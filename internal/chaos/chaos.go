// Package chaos is the fault-injection conformance suite: it drives
// every noncontiguous access-method datapath over a scripted faulty
// wire (internal/faultnet) while I/O daemons are killed and restarted
// mid-transfer, and proves the recovering client produced exactly the
// bytes a healthy run would have — the contract every future scale PR
// is tested against (DESIGN.md §9).
//
// A scenario runs the same deterministic workload twice: once against
// a chaotic cluster (fault script on every daemon listener, a killer
// goroutine crash-restarting daemons, clients armed with a
// RetryPolicy) and once against a healthy shadow cluster. The final
// file images must be byte-identical to each other and to the locally
// composed expectation. Every decision derives from one logged seed,
// so a failing run replays exactly (PVFS_CHAOS_SEED in the tests).
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/faultnet"
	"pvfs/internal/ioseg"
	"pvfs/internal/striping"
)

// Scenario selects one conformance run: a datapath, a workload shape,
// and which failure modes to arm.
type Scenario struct {
	Name string

	// Method is the datapath under test. AccessSieve and AccessHybrid
	// perform read-modify-write and need Ranks=1 (callers must
	// serialize sieving writers; §4.2.1).
	Method client.AccessMethod

	// Strided routes the pattern through the Strided shorthand (the
	// datatype wire path) instead of an explicit region list.
	Strided bool

	// Ranks is the number of concurrent client processes (default 1).
	Ranks int

	// Spread stretches the block-cyclic interleave beyond the rank
	// count, leaving unwritten holes between blocks — the shape that
	// makes sieving and hybrid coalescing do real work. Defaults to
	// Ranks (no holes).
	Spread int

	// Async > 1 splits each rank's pattern into that many concurrent
	// nonblocking Ops (File.Start overlap).
	Async int

	// Blocks and BlockLen shape each rank's pattern: Blocks blocks of
	// BlockLen bytes (defaults 32 × 1536 — block boundaries straddle
	// stripe units).
	Blocks   int
	BlockLen int64

	// Kill arms the killer goroutine: daemons are crash-restarted
	// while transfers are in flight.
	Kill bool

	// KillTarget pins the killer to daemon KillTarget-1; the zero
	// value picks a random daemon per cycle.
	KillTarget int

	// DataDir, when non-empty, backs the chaotic cluster with Dir
	// stores under it (durable across kills the way a real iod data
	// directory is); empty uses Mem stores, which the cluster harness
	// also keeps across restarts.
	DataDir string

	// NumIOD is the daemon count (default 4).
	NumIOD int

	// Window, when non-zero, overrides the list pipelining window.
	Window int

	// CoalesceGap is the hybrid coalescing gap (default BlockLen×2 for
	// hybrid scenarios, so holes actually coalesce).
	CoalesceGap int64
}

func (s *Scenario) normalize() {
	if s.Ranks <= 0 {
		s.Ranks = 1
	}
	if s.Spread < s.Ranks {
		s.Spread = s.Ranks
	}
	if s.Blocks <= 0 {
		s.Blocks = 32
	}
	if s.BlockLen <= 0 {
		s.BlockLen = 1536
	}
	if s.NumIOD <= 0 {
		s.NumIOD = 4
	}
	if s.Method == client.AccessHybrid && s.CoalesceGap == 0 {
		s.CoalesceGap = 2 * s.BlockLen
	}
}

// Report summarizes a completed scenario for seed logging.
type Report struct {
	Seed     int64
	Injected int64 // structural wire faults handed out
	Kills    int   // daemon crash/restart cycles
	Retries  int64 // client retry attempts across all ranks
	Bytes    int64 // image size verified
}

func (r Report) String() string {
	return fmt.Sprintf("seed=%d injected=%d kills=%d retries=%d bytes=%d",
		r.Seed, r.Injected, r.Kills, r.Retries, r.Bytes)
}

// Policy is the suite's retry policy: generous enough to ride out a
// kill/restart cycle (restart latency is tens of milliseconds; this
// backoff series spans well past a second) while still bounded — a
// daemon that never returns surfaces a typed *client.RetryError
// instead of a hang.
func Policy() client.RetryPolicy {
	return client.RetryPolicy{Max: 12, Backoff: 2 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
}

// pattern returns rank's file regions: a block-cyclic interleave over
// Spread slots, so concurrent ranks write disjoint bytes, the union
// tiles the written slots, and slots beyond Ranks stay holes.
func (s Scenario) pattern(rank int) ioseg.List {
	l := make(ioseg.List, 0, s.Blocks)
	for k := 0; k < s.Blocks; k++ {
		off := (int64(k)*int64(s.Spread) + int64(rank)) * s.BlockLen
		l = append(l, ioseg.Segment{Offset: off, Length: s.BlockLen})
	}
	return l
}

// fill writes rank's deterministic payload.
func fill(arena []byte, rank int, seed int64) {
	for i := range arena {
		arena[i] = byte(int64(rank+1)*31 + int64(i)*7 + seed)
	}
}

// imageSize is the logical extent the interleave covers.
func (s Scenario) imageSize() int64 {
	return int64(s.Blocks) * int64(s.Spread) * s.BlockLen
}

// expectedImage composes the final file image locally from every
// rank's pattern (ranks are disjoint; holes stay zero).
func (s Scenario) expectedImage(seed int64) []byte {
	img := make([]byte, s.imageSize())
	arena := make([]byte, int64(s.Blocks)*s.BlockLen)
	for r := 0; r < s.Ranks; r++ {
		fill(arena, r, seed)
		var stream int64
		for _, seg := range s.pattern(r) {
			copy(img[seg.Offset:seg.End()], arena[stream:stream+seg.Length])
			stream += seg.Length
		}
	}
	return img
}

// request builds the rank's transfer descriptor for the scenario's
// datapath.
func (s Scenario) request(write bool, arena []byte, rank int) client.Request {
	pol := Policy()
	req := client.Request{
		Write:       write,
		Arena:       arena,
		Method:      s.Method,
		Retry:       &pol,
		List:        client.ListOptions{Window: s.Window},
		CoalesceGap: s.CoalesceGap,
	}
	if s.Strided {
		req.Strided = &client.Strided{
			Start:    int64(rank) * s.BlockLen,
			Stride:   int64(s.Spread) * s.BlockLen,
			BlockLen: s.BlockLen,
			Count:    int64(s.Blocks),
		}
	} else {
		req.File = s.pattern(rank)
	}
	return req
}

// killer crash-restarts daemons until stopped; every choice comes
// from rng, which the caller seeds deterministically.
type killer struct {
	c      *cluster.Cluster
	rng    *rand.Rand
	n      int
	target int
	stop   chan struct{}
	wg     sync.WaitGroup

	mu    sync.Mutex
	kills int
	err   error
}

func startKiller(c *cluster.Cluster, seed int64, n, target int) *killer {
	k := &killer{c: c, rng: rand.New(rand.NewSource(seed)), n: n, target: target, stop: make(chan struct{})}
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		for {
			select {
			case <-k.stop:
				return
			case <-time.After(time.Duration(1+k.rng.Intn(15)) * time.Millisecond):
			}
			i := k.target
			if i < 0 {
				i = k.rng.Intn(k.n)
			}
			if err := k.c.KillIOD(i); err != nil {
				k.fail(fmt.Errorf("kill iod %d: %w", i, err))
				return
			}
			// The dead window: retrying clients back off through it.
			time.Sleep(time.Duration(5+k.rng.Intn(30)) * time.Millisecond)
			if err := k.c.RestartIOD(i); err != nil {
				k.fail(fmt.Errorf("restart iod %d: %w", i, err))
				return
			}
			k.mu.Lock()
			k.kills++
			k.mu.Unlock()
		}
	}()
	return k
}

func (k *killer) fail(err error) {
	k.mu.Lock()
	if k.err == nil {
		k.err = err
	}
	k.mu.Unlock()
}

// halt stops the killer and returns (kills, error). Every daemon is
// back up when halt returns.
func (k *killer) halt() (int, error) {
	close(k.stop)
	k.wg.Wait()
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.kills, k.err
}

// phaseGate separates the write phase from the read phase: it opens
// when all n ranks arrive OR any rank aborts. A plain barrier would
// deadlock the surviving ranks when one rank's write phase fails
// (e.g. retry exhaustion under a hostile seed) — the failure must
// surface as the run's typed error, never as a hang.
type phaseGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiting int
	aborted bool
}

func newPhaseGate(n int) *phaseGate {
	g := &phaseGate{waiting: n}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Arrive blocks until every rank arrived or any rank aborted.
func (g *phaseGate) Arrive() {
	g.mu.Lock()
	g.waiting--
	if g.waiting <= 0 {
		g.cond.Broadcast()
	}
	for g.waiting > 0 && !g.aborted {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Abort opens the gate for everyone; the aborting rank's error is the
// run's verdict.
func (g *phaseGate) Abort() {
	g.mu.Lock()
	g.aborted = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// runWorkload drives the scenario's write phase and per-rank chaotic
// read-back verification against one cluster, accumulating client
// retry counts into retries.
func runWorkload(c *cluster.Cluster, s Scenario, seed int64, name string, retries *atomic.Int64) error {
	fs0, err := c.Connect()
	if err != nil {
		return err
	}
	defer fs0.Close()
	cfg := striping.Config{PCount: s.NumIOD, StripeSize: 4096}
	if _, err := fs0.Create(name, cfg); err != nil {
		return err
	}
	gate := newPhaseGate(s.Ranks)
	return cluster.RunRanks(s.Ranks, func(rank int) error {
		fs, err := c.Connect()
		if err != nil {
			gate.Abort()
			return err
		}
		defer func() {
			retries.Add(fs.Counters().Retries.Load())
			fs.Close()
		}()
		f, err := fs.Open(name)
		if err != nil {
			gate.Abort()
			return err
		}
		defer f.Close()
		arena := make([]byte, int64(s.Blocks)*s.BlockLen)
		fill(arena, rank, seed)
		ctx := context.Background()
		if err := runTransfer(ctx, f, s, true, arena, rank); err != nil {
			gate.Abort()
			return fmt.Errorf("rank %d write: %w", rank, err)
		}
		gate.Arrive() // writes land before any rank rereads
		got := make([]byte, len(arena))
		if err := runTransfer(ctx, f, s, false, got, rank); err != nil {
			return fmt.Errorf("rank %d read: %w", rank, err)
		}
		if !bytes.Equal(got, arena) {
			return fmt.Errorf("rank %d: chaotic read-back diverged from written data (%s)", rank, firstDiff(got, arena))
		}
		return nil
	})
}

// runTransfer performs one direction of a rank's pattern, either as a
// single Run or as Async overlapping Ops on stream-contiguous chunks.
func runTransfer(ctx context.Context, f *client.File, s Scenario, write bool, arena []byte, rank int) error {
	if s.Async <= 1 {
		_, err := f.Run(ctx, s.request(write, arena, rank))
		return err
	}
	full := s.pattern(rank)
	per := (len(full) + s.Async - 1) / s.Async
	var ops []*client.Op
	var stream int64
	for lo := 0; lo < len(full); lo += per {
		hi := lo + per
		if hi > len(full) {
			hi = len(full)
		}
		part := full[lo:hi]
		n := part.TotalLength()
		req := s.request(write, arena, rank)
		req.Strided = nil
		req.File = part
		req.Mem = ioseg.List{{Offset: stream, Length: n}}
		ops = append(ops, f.Start(ctx, req))
		stream += n
	}
	var first error
	for _, op := range ops {
		if _, err := op.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// readImage reads the full logical image through a fresh client.
func readImage(c *cluster.Cluster, name string, size int64) ([]byte, error) {
	fs, err := c.Connect()
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	fs.SetRetryPolicy(Policy())
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img := make([]byte, size)
	if _, err := f.ReadAt(img, 0); err != nil {
		return nil, err
	}
	return img, nil
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("first difference at byte %d: %#x vs %#x", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}

// Run executes one scenario under seed and verifies byte-identical
// images across the chaotic run, the healthy shadow run, and the
// locally composed expectation.
func Run(seed int64, s Scenario) (Report, error) {
	s.normalize()
	rep := Report{Seed: seed}

	script := faultnet.NewScript(faultnet.DefaultChaos(seed))
	chaotic, err := cluster.Start(cluster.Options{
		NumIOD: s.NumIOD, DataDir: s.DataDir, FaultScript: script,
	})
	if err != nil {
		return rep, err
	}
	defer chaotic.Close()
	shadow, err := cluster.Start(cluster.Options{NumIOD: s.NumIOD})
	if err != nil {
		return rep, err
	}
	defer shadow.Close()

	var retries atomic.Int64
	var k *killer
	if s.Kill {
		k = startKiller(chaotic, seed+1, s.NumIOD, s.KillTarget-1)
	}
	chaosErr := runWorkload(chaotic, s, seed, "chaos.dat", &retries)
	if k != nil {
		kills, kerr := k.halt()
		rep.Kills = kills
		if kerr != nil && chaosErr == nil {
			chaosErr = kerr
		}
	}
	rep.Injected = script.Injected()
	rep.Retries = retries.Load()
	if chaosErr != nil {
		return rep, fmt.Errorf("chaotic run: %w", chaosErr)
	}
	var shadowRetries atomic.Int64
	if err := runWorkload(shadow, s, seed, "chaos.dat", &shadowRetries); err != nil {
		return rep, fmt.Errorf("shadow run: %w", err)
	}

	// Verification phase: a healthy wire on both sides.
	script.Disarm()
	size := s.imageSize()
	rep.Bytes = size
	chaosImg, err := readImage(chaotic, "chaos.dat", size)
	if err != nil {
		return rep, fmt.Errorf("reading chaotic image: %w", err)
	}
	shadowImg, err := readImage(shadow, "chaos.dat", size)
	if err != nil {
		return rep, fmt.Errorf("reading shadow image: %w", err)
	}
	if !bytes.Equal(chaosImg, shadowImg) {
		return rep, fmt.Errorf("chaotic image diverged from healthy shadow: %s", firstDiff(chaosImg, shadowImg))
	}
	if want := s.expectedImage(seed); !bytes.Equal(chaosImg, want) {
		return rep, fmt.Errorf("image diverged from expectation: %s", firstDiff(chaosImg, want))
	}
	return rep, nil
}
