package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pvfs/internal/cluster"
	"pvfs/internal/striping"
)

// MetaScenario selects one metadata-plane conformance run: a seeded
// create/write/stat storm against the sharded, replicated metadata
// plane (DESIGN.md §13) while a killer crash-restarts whichever
// master replica currently leads. The contract under test is the
// plane's headline guarantee — an acked create survives any single
// leader crash, because the leader replicates to a majority before
// answering — plus the shard-routing invariant that clients never see
// a WrongEpoch or routing artifact as a user-visible error.
type MetaScenario struct {
	Name string

	// Masters is the master replica count (default 3: one crash never
	// loses majority).
	Masters int

	// Shards is the metadata shard count (default 2; CI also runs the
	// matrix leg PVFS_CHAOS_SHARDS=4).
	Shards int

	// NumIOD is the data daemon count (default 2).
	NumIOD int

	// Ranks is the number of concurrent client processes (default 2).
	Ranks int

	// Files is the number of creates per rank (default 12).
	Files int

	// Kill arms the leader killer.
	Kill bool

	// BatchBoundary syncs the killer to group-commit flushes: each
	// strike waits for the leader's batch counter to advance and kills
	// immediately after, so the crash lands right at a batch boundary —
	// the window where a batch is acked but its replication wave may
	// still be in flight to some follower. Requires Kill.
	BatchBoundary bool

	// NoBatch forces group commit off on both planes (the
	// PVFS_NO_META_BATCH fallback): every propose takes its own WAL
	// fsync and replication round.
	NoBatch bool
}

func (s *MetaScenario) normalize() {
	if s.Masters <= 0 {
		s.Masters = 3
	}
	if s.Shards <= 0 {
		s.Shards = 2
	}
	if s.NumIOD <= 0 {
		s.NumIOD = 2
	}
	if s.Ranks <= 0 {
		s.Ranks = 2
	}
	if s.Files <= 0 {
		s.Files = 12
	}
}

// MetaReport summarizes a completed metadata scenario for seed logging.
type MetaReport struct {
	Seed    int64
	Kills   int   // leader crash/restart cycles
	Acked   int   // creates acked by the chaotic plane
	Retries int64 // client retry attempts across all ranks
}

func (r MetaReport) String() string {
	return fmt.Sprintf("seed=%d kills=%d acked=%d retries=%d",
		r.Seed, r.Kills, r.Acked, r.Retries)
}

// leaderKiller crash-restarts whichever master currently leads; every
// choice derives from rng, which the caller seeds deterministically.
// With batchBoundary set, each strike is held until a group-commit
// flush lands, so the crash hits right at a batch boundary.
type leaderKiller struct {
	c             *cluster.Cluster
	rng           *rand.Rand
	batchBoundary bool
	stop          chan struct{}
	wg            sync.WaitGroup

	mu    sync.Mutex
	kills int
	err   error
}

// awaitBatch blocks until the plane's batch counter moves past base
// (a flush just committed) or the window expires; either way the kill
// proceeds. Counter resets from earlier kills only delay one strike.
func (k *leaderKiller) awaitBatch(base int64) {
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if k.c.MetaStats().MetaBatches != base {
			return
		}
		select {
		case <-k.stop:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

func startLeaderKiller(c *cluster.Cluster, seed int64, batchBoundary bool) *leaderKiller {
	k := &leaderKiller{
		c: c, rng: rand.New(rand.NewSource(seed)),
		batchBoundary: batchBoundary, stop: make(chan struct{}),
	}
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		for {
			select {
			case <-k.stop:
				return
			case <-time.After(time.Duration(10+k.rng.Intn(30)) * time.Millisecond):
			}
			if k.batchBoundary {
				k.awaitBatch(k.c.MetaStats().MetaBatches)
			}
			lead := k.c.MetaLeader()
			if lead < 0 {
				continue // mid-election already; let it settle
			}
			if err := k.c.KillMaster(lead); err != nil {
				k.fail(fmt.Errorf("kill master %d: %w", lead, err))
				return
			}
			// The leaderless window: clients' proposals ride it out via
			// the shard proposers' retry loops.
			time.Sleep(time.Duration(10+k.rng.Intn(40)) * time.Millisecond)
			if err := k.c.RestartMaster(lead); err != nil {
				k.fail(fmt.Errorf("restart master %d: %w", lead, err))
				return
			}
			k.mu.Lock()
			k.kills++
			k.mu.Unlock()
			// Recovery window: a crash cadence faster than the election
			// timeout keeps the group perpetually leaderless, and no
			// consensus protocol guarantees progress under that — the
			// storm would only exhaust its retry budget. Let the next
			// leader emerge and serve a burst before crashing it too.
			select {
			case <-k.stop:
				return
			case <-time.After(time.Duration(100+k.rng.Intn(150)) * time.Millisecond):
			}
		}
	}()
	return k
}

func (k *leaderKiller) fail(err error) {
	k.mu.Lock()
	if k.err == nil {
		k.err = err
	}
	k.mu.Unlock()
}

// halt stops the killer and returns (kills, error). Every master is
// back up when halt returns.
func (k *leaderKiller) halt() (int, error) {
	close(k.stop)
	k.wg.Wait()
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.kills, k.err
}

// metaName is rank r's i-th file.
func metaName(r, i int) string { return fmt.Sprintf("meta-r%d-f%d.dat", r, i) }

// metaPayload is the deterministic content of rank r's i-th file: the
// same bytes on the chaotic and shadow clusters, so images compare.
func metaPayload(seed int64, r, i int) []byte {
	rng := rand.New(rand.NewSource(seed ^ int64(r*7919+i)))
	b := make([]byte, 256+rng.Intn(1024))
	rng.Read(b)
	return b
}

// metaStorm drives the seeded create/write/stat storm against one
// cluster: Ranks concurrent clients each create Files files, write a
// deterministic payload, and stat (reopen) an earlier file of their
// own, exercising create, open, and setSize across every shard. Acked
// creates are recorded in acked as soon as Create returns success —
// the set the zero-loss check audits.
func metaStorm(c *cluster.Cluster, s MetaScenario, seed int64, acked *sync.Map, retries *atomic.Int64) error {
	cfg := striping.Config{PCount: s.NumIOD, StripeSize: 512}
	return cluster.RunRanks(s.Ranks, func(rank int) error {
		fs, err := c.Connect()
		if err != nil {
			return err
		}
		defer func() {
			retries.Add(fs.Counters().Retries.Load())
			fs.Close()
		}()
		fs.SetRetryPolicy(Policy())
		rng := rand.New(rand.NewSource(seed + int64(rank)*1009))
		for i := 0; i < s.Files; i++ {
			name := metaName(rank, i)
			f, err := fs.Create(name, cfg)
			if err != nil {
				return fmt.Errorf("rank %d create %s: %w", rank, name, err)
			}
			acked.Store(name, true)
			if _, err := f.WriteAt(metaPayload(seed, rank, i), 0); err != nil {
				return fmt.Errorf("rank %d write %s: %w", rank, name, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("rank %d close %s: %w", rank, name, err)
			}
			// Stat storm: reopen one of this rank's earlier files.
			j := rng.Intn(i + 1)
			prev := metaName(rank, j)
			g, err := fs.Open(prev)
			if err != nil {
				return fmt.Errorf("rank %d stat %s: %w", rank, prev, err)
			}
			got, want := g.RecordedSize(), int64(len(metaPayload(seed, rank, j)))
			g.Close()
			if got != want {
				return fmt.Errorf("rank %d stat %s: recorded size %d, want %d", rank, prev, got, want)
			}
		}
		return nil
	})
}

// metaImage reads every file the plane lists through a fresh client,
// returning name -> bytes.
func metaImage(c *cluster.Cluster) (map[string][]byte, error) {
	fs, err := c.Connect()
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	fs.SetRetryPolicy(Policy())
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	img := make(map[string][]byte, len(names))
	for _, name := range names {
		f, err := fs.Open(name)
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", name, err)
		}
		b := make([]byte, f.RecordedSize())
		if len(b) > 0 {
			if _, err := f.ReadAt(b, 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("read %s: %w", name, err)
			}
		}
		f.Close()
		img[name] = b
	}
	return img, nil
}

// RunMeta executes one metadata scenario under seed: the storm runs
// against a chaotic cluster whose master leader is crash-restarted
// throughout, then against a healthy shadow cluster, and the two
// planes must agree exactly — every acked create present with
// byte-identical content, no create lost to a failover window.
func RunMeta(seed int64, s MetaScenario) (MetaReport, error) {
	s.normalize()
	rep := MetaReport{Seed: seed}

	mo := func() *cluster.MetaOptions {
		return &cluster.MetaOptions{Masters: s.Masters, Shards: s.Shards, NoBatch: s.NoBatch}
	}
	chaotic, err := cluster.Start(cluster.Options{NumIOD: s.NumIOD, Meta: mo()})
	if err != nil {
		return rep, err
	}
	defer chaotic.Close()
	shadow, err := cluster.Start(cluster.Options{NumIOD: s.NumIOD, Meta: mo()})
	if err != nil {
		return rep, err
	}
	defer shadow.Close()

	var acked sync.Map
	var retries atomic.Int64
	var k *leaderKiller
	if s.Kill {
		k = startLeaderKiller(chaotic, seed+1, s.BatchBoundary)
	}
	chaosErr := metaStorm(chaotic, s, seed, &acked, &retries)
	if k != nil {
		kills, kerr := k.halt()
		rep.Kills = kills
		if kerr != nil && chaosErr == nil {
			chaosErr = kerr
		}
	}
	rep.Retries = retries.Load()
	if chaosErr != nil {
		return rep, fmt.Errorf("chaotic run: %w", chaosErr)
	}
	var shadowAcked sync.Map
	var shadowRetries atomic.Int64
	if err := metaStorm(shadow, s, seed, &shadowAcked, &shadowRetries); err != nil {
		return rep, fmt.Errorf("shadow run: %w", err)
	}

	// Verification: every master is back up (halt returned); now the
	// plane must still know every create it ever acked.
	chaosImg, err := metaImage(chaotic)
	if err != nil {
		return rep, fmt.Errorf("reading chaotic namespace: %w", err)
	}
	shadowImg, err := metaImage(shadow)
	if err != nil {
		return rep, fmt.Errorf("reading shadow namespace: %w", err)
	}
	var lost []string
	acked.Range(func(key, _ any) bool {
		rep.Acked++
		if _, ok := chaosImg[key.(string)]; !ok {
			lost = append(lost, key.(string))
		}
		return true
	})
	if len(lost) > 0 {
		sort.Strings(lost)
		return rep, fmt.Errorf("%d acked creates lost across failover: %v", len(lost), lost)
	}
	if len(chaosImg) != len(shadowImg) {
		return rep, fmt.Errorf("namespace diverged: chaotic lists %d files, shadow %d", len(chaosImg), len(shadowImg))
	}
	for name, b := range chaosImg {
		sb, ok := shadowImg[name]
		if !ok {
			return rep, fmt.Errorf("chaotic file %s missing from shadow", name)
		}
		if !bytes.Equal(b, sb) {
			return rep, fmt.Errorf("file %s diverged from shadow: %s", name, firstDiff(b, sb))
		}
	}
	return rep, nil
}
