package chaos_test

// The chaos conformance suite (ISSUE 5): every noncontiguous datapath
// is driven over a scripted faulty wire while an I/O daemon is killed
// and restarted mid-transfer; the surviving client must produce
// byte-identical file images vs a healthy shadow run, drain its
// goroutines, and surface typed errors — never hang — when recovery
// is impossible.
//
// Each run logs its seed; replay a failure exactly with
//
//	PVFS_CHAOS_SEED=<seed> go test -race ./internal/chaos

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"pvfs/internal/chaos"
	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/ioseg"
	"pvfs/internal/striping"
)

// suiteSeed returns the seed to drive every randomized decision from:
// PVFS_CHAOS_SEED when set (replay), wall clock otherwise.
func suiteSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("PVFS_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("PVFS_CHAOS_SEED=%q: %v", env, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

// settleGoroutines waits for the goroutine count to return to
// baseline after a scenario tears down; a stuck retry or an abandoned
// demux loop shows up here.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after chaos run: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func runScenario(t *testing.T, s chaos.Scenario) {
	t.Helper()
	seed := suiteSeed(t)
	before := runtime.NumGoroutine()
	rep, err := chaos.Run(seed, s)
	t.Logf("%s: %v (replay: PVFS_CHAOS_SEED=%d go test -race ./internal/chaos -run %s)",
		s.Name, rep, seed, t.Name())
	if err != nil {
		t.Fatalf("scenario %s failed under seed %d: %v", s.Name, seed, err)
	}
	settleGoroutines(t, before)
}

// The conformance matrix: a single daemon is killed and restarted
// mid-transfer on every access-method path, over a chaotic wire.

func TestChaosListIO(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "list", Method: client.AccessList,
		Ranks: 2, Blocks: 48, Kill: true,
		DataDir: t.TempDir(),
	})
}

func TestChaosListSerializedWindow(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "list-w1", Method: client.AccessList,
		Ranks: 2, Blocks: 24, Window: 1, Kill: true,
	})
}

func TestChaosDatatype(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "datatype", Method: client.AccessDatatype, Strided: true,
		Ranks: 2, Blocks: 48, Kill: true,
	})
}

func TestChaosMultiple(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "multiple", Method: client.AccessMultiple,
		Ranks: 2, Blocks: 12, Kill: true,
	})
}

func TestChaosSieve(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "sieve", Method: client.AccessSieve,
		Ranks: 1, Spread: 3, Blocks: 32, Kill: true,
	})
}

func TestChaosHybrid(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "hybrid", Method: client.AccessHybrid,
		Ranks: 1, Spread: 3, Blocks: 32, Kill: true,
	})
}

func TestChaosStartAsync(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "start-async", Method: client.AccessList,
		Ranks: 2, Async: 4, Blocks: 48, Kill: true,
	})
}

// TestChaosStreamedReads drives the zero-copy stream framing (§11):
// per-region reads large enough to stream (≥64 KiB) over a chaotic
// wire with kills, Dir-backed so the ring datapath serves the fills.
// The faulty wire is not a *net.TCPConn, so the server exercises the
// stream's buffered fallback — the framing and failure paths the
// stream contract (exact promised length or broken connection) pins.
func TestChaosStreamedReads(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "streamed", Method: client.AccessMultiple,
		Ranks: 2, Blocks: 8, BlockLen: 96 << 10, Kill: true,
		DataDir: t.TempDir(),
	})
}

// TestChaosRingFallback forces PVFS_NO_URING so the same Dir-backed
// list scenario runs on the vectored rung of the §11 fallback ladder.
func TestChaosRingFallback(t *testing.T) {
	t.Setenv("PVFS_NO_URING", "1")
	runScenario(t, chaos.Scenario{
		Name: "ring-fallback", Method: client.AccessList,
		Ranks: 2, Blocks: 48, Kill: true,
		DataDir: t.TempDir(),
	})
}

// TestChaosPinnedKill pins the killer to daemon 0 so the same stripe
// server dies repeatedly — the repeated-crash-of-one-node profile.
func TestChaosPinnedKill(t *testing.T) {
	runScenario(t, chaos.Scenario{
		Name: "pinned-kill", Method: client.AccessList,
		Ranks: 2, Blocks: 48, Kill: true, KillTarget: 1,
	})
}

// chaosShards returns the metadata shard count for meta scenarios:
// PVFS_CHAOS_SHARDS when set (the CI matrix leg runs 4), default 2.
func chaosShards(t *testing.T) int {
	t.Helper()
	env := os.Getenv("PVFS_CHAOS_SHARDS")
	if env == "" {
		return 2
	}
	v, err := strconv.Atoi(env)
	if err != nil || v <= 0 {
		t.Fatalf("PVFS_CHAOS_SHARDS=%q: want a positive integer", env)
	}
	return v
}

// TestChaosMetaLeaderFailover is the metadata-plane conformance case
// (DESIGN.md §13): a seeded create/write/stat storm runs while the
// master leader is repeatedly crash-restarted. Zero acked creates may
// be lost, and the surviving namespace must be byte-identical to a
// healthy shadow cluster's.
func TestChaosMetaLeaderFailover(t *testing.T) {
	seed := suiteSeed(t)
	before := runtime.NumGoroutine()
	s := chaos.MetaScenario{Name: "meta-failover", Shards: chaosShards(t), Files: 40, Kill: true}
	rep, err := chaos.RunMeta(seed, s)
	t.Logf("%s: %v (replay: PVFS_CHAOS_SEED=%d go test -race ./internal/chaos -run %s)",
		s.Name, rep, seed, t.Name())
	if err != nil {
		t.Fatalf("scenario %s failed under seed %d: %v", s.Name, seed, err)
	}
	if rep.Kills == 0 {
		t.Errorf("leader killer never fired; the storm finished before any crash")
	}
	if rep.Acked == 0 {
		t.Error("no creates acked")
	}
	settleGoroutines(t, before)
}

// TestChaosMetaKillAtBatchBoundary pins the leader killer to group-
// commit flush boundaries: each strike waits for the batch counter to
// advance and crashes the leader immediately after, hitting the
// window where a freshly-acked batch's replication wave may still be
// in flight. Zero acked creates may be lost.
func TestChaosMetaKillAtBatchBoundary(t *testing.T) {
	seed := suiteSeed(t)
	before := runtime.NumGoroutine()
	s := chaos.MetaScenario{
		Name: "meta-batch-kill", Shards: chaosShards(t),
		Ranks: 4, Files: 24, Kill: true, BatchBoundary: true,
	}
	rep, err := chaos.RunMeta(seed, s)
	t.Logf("%s: %v (replay: PVFS_CHAOS_SEED=%d go test -race ./internal/chaos -run %s)",
		s.Name, rep, seed, t.Name())
	if err != nil {
		t.Fatalf("scenario %s failed under seed %d: %v", s.Name, seed, err)
	}
	if rep.Kills == 0 {
		t.Errorf("leader killer never fired; the storm finished before any crash")
	}
	settleGoroutines(t, before)
}

// TestChaosMetaFailoverNoBatch reruns the leader-failover storm with
// group commit forced off via the PVFS_NO_META_BATCH knob (read by
// both the master nodes and the shard proposers): the solo fallback
// must give the same zero-loss guarantee. CI also runs the whole
// chaos suite under this knob as a matrix leg.
func TestChaosMetaFailoverNoBatch(t *testing.T) {
	t.Setenv("PVFS_NO_META_BATCH", "1")
	seed := suiteSeed(t)
	before := runtime.NumGoroutine()
	s := chaos.MetaScenario{Name: "meta-failover-solo", Shards: chaosShards(t), Files: 24, Kill: true}
	rep, err := chaos.RunMeta(seed, s)
	t.Logf("%s: %v (replay: PVFS_CHAOS_SEED=%d go test -race ./internal/chaos -run %s)",
		s.Name, rep, seed, t.Name())
	if err != nil {
		t.Fatalf("scenario %s failed under seed %d: %v", s.Name, seed, err)
	}
	if rep.Acked == 0 {
		t.Error("no creates acked")
	}
	settleGoroutines(t, before)
}

// TestRetryExhaustionIsTypedNotAHang is the negative half of the
// acceptance criteria: when a daemon dies and never comes back, a
// bounded retry policy must surface *client.RetryError promptly —
// the operation must not wedge.
func TestRetryExhaustionIsTypedNotAHang(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("doomed.dat", striping.Config{PCount: 2, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, 256), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillIOD(1); err != nil {
		t.Fatal(err)
	}
	// Never restarted: 3 retries with 1ms backoff must exhaust fast.
	pol := client.RetryPolicy{Max: 3, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 256)
		_, err := f.Run(context.Background(), client.Request{
			Arena: buf,
			File:  ioseg.List{{Offset: 0, Length: 256}},
			Retry: &pol,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read from a dead daemon succeeded")
		}
		var re *client.RetryError
		if !errors.As(err, &re) {
			t.Fatalf("error %v (%T) is not a *client.RetryError", err, err)
		}
		if re.Attempts != 1+pol.Max {
			t.Errorf("RetryError.Attempts = %d, want %d", re.Attempts, 1+pol.Max)
		}
		if got := fs.Counters().Retries.Load(); got != int64(pol.Max) {
			t.Errorf("retries = %d, want %d", got, pol.Max)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("retry exhaustion hung instead of returning a typed error")
	}
	// RestartIOD heals the same handle without reopening.
	if err := c.RestartIOD(1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	fs.SetRetryPolicy(chaos.Policy())
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
}
