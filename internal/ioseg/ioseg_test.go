package ioseg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seg(off, n int64) Segment { return Segment{Offset: off, Length: n} }

func TestSegmentBasics(t *testing.T) {
	s := seg(10, 5)
	if s.End() != 15 {
		t.Fatalf("End = %d, want 15", s.End())
	}
	if s.Empty() {
		t.Fatal("non-empty segment reported empty")
	}
	if !seg(3, 0).Empty() {
		t.Fatal("zero-length segment not empty")
	}
	for _, p := range []int64{10, 12, 14} {
		if !s.Contains(p) {
			t.Errorf("Contains(%d) = false, want true", p)
		}
	}
	for _, p := range []int64{9, 15, 100} {
		if s.Contains(p) {
			t.Errorf("Contains(%d) = true, want false", p)
		}
	}
}

func TestSegmentOverlapsAdjacent(t *testing.T) {
	cases := []struct {
		a, b              Segment
		overlap, adjacent bool
	}{
		{seg(0, 10), seg(5, 10), true, false},
		{seg(0, 10), seg(10, 5), false, true},
		{seg(10, 5), seg(0, 10), false, true},
		{seg(0, 10), seg(20, 5), false, false},
		{seg(0, 10), seg(0, 10), true, false},
		{seg(5, 1), seg(0, 20), true, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.overlap)
		}
		if got := c.b.Overlaps(c.a); got != c.overlap {
			t.Errorf("Overlaps not symmetric for %v,%v", c.a, c.b)
		}
		if got := c.a.Adjacent(c.b); got != c.adjacent {
			t.Errorf("%v.Adjacent(%v) = %v, want %v", c.a, c.b, got, c.adjacent)
		}
	}
}

func TestSegmentIntersect(t *testing.T) {
	a, b := seg(0, 100), seg(50, 100)
	got, ok := a.Intersect(b)
	if !ok || got != seg(50, 50) {
		t.Fatalf("Intersect = %v,%v want [50,+50),true", got, ok)
	}
	if _, ok := seg(0, 10).Intersect(seg(10, 10)); ok {
		t.Fatal("adjacent segments should not intersect")
	}
	if _, ok := seg(0, 0).Intersect(seg(0, 10)); ok {
		t.Fatal("empty segment should not intersect")
	}
}

func TestSegmentSplit(t *testing.T) {
	s := seg(10, 10)
	l, r := s.Split(15)
	if l != seg(10, 5) || r != seg(15, 5) {
		t.Fatalf("Split mid: %v %v", l, r)
	}
	l, r = s.Split(5)
	if !l.Empty() || r != s {
		t.Fatalf("Split before: %v %v", l, r)
	}
	l, r = s.Split(25)
	if l != s || !r.Empty() {
		t.Fatalf("Split after: %v %v", l, r)
	}
	l, r = s.Split(10)
	if !l.Empty() || r != s {
		t.Fatalf("Split at start: %v %v", l, r)
	}
}

func TestSegmentValidate(t *testing.T) {
	if err := seg(0, 0).Validate(); err != nil {
		t.Errorf("empty segment invalid: %v", err)
	}
	if err := seg(-1, 5).Validate(); err == nil {
		t.Error("negative offset accepted")
	}
	if err := seg(1, -5).Validate(); err == nil {
		t.Error("negative length accepted")
	}
	if err := seg(1<<62, 1<<62).Validate(); err == nil {
		t.Error("overflowing segment accepted")
	}
}

func TestFromOffLen(t *testing.T) {
	l, err := FromOffLen([]int64{0, 100, 50}, []int64{10, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 { // zero-length entry dropped
		t.Fatalf("len = %d, want 2", len(l))
	}
	if _, err := FromOffLen([]int64{0}, []int64{1, 2}); err != ErrMismatchedLists {
		t.Fatalf("mismatched lists: err = %v", err)
	}
	if _, err := FromOffLen([]int64{-3}, []int64{1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestOffLenRoundTrip(t *testing.T) {
	l := List{seg(5, 10), seg(100, 1), seg(7, 3)}
	offs, lens := l.OffLen()
	back, err := FromOffLen(offs, lens)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(l) {
		t.Fatalf("round trip: %v != %v", back, l)
	}
}

func TestTotalLengthSpanCount(t *testing.T) {
	l := List{seg(10, 5), seg(100, 20), seg(0, 1)}
	if got := l.TotalLength(); got != 26 {
		t.Fatalf("TotalLength = %d, want 26", got)
	}
	if got := l.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	span, ok := l.Span()
	if !ok || span != seg(0, 120) {
		t.Fatalf("Span = %v,%v", span, ok)
	}
	if _, ok := (List{}).Span(); ok {
		t.Fatal("empty list has a span")
	}
}

func TestNormalize(t *testing.T) {
	l := List{seg(10, 5), seg(0, 5), seg(12, 10), seg(30, 0), seg(40, 2)}
	n := l.Normalize()
	want := List{seg(0, 5), seg(10, 12), seg(40, 2)}
	if !n.Equal(want) {
		t.Fatalf("Normalize = %v, want %v", n, want)
	}
	if !n.IsNormalized() {
		t.Fatal("normalized list fails IsNormalized")
	}
	if l.IsNormalized() {
		t.Fatal("unsorted overlapping list passes IsNormalized")
	}
}

func TestNormalizeMergesAdjacent(t *testing.T) {
	n := List{seg(0, 5), seg(5, 5)}.Normalize()
	if !n.Equal(List{seg(0, 10)}) {
		t.Fatalf("adjacent not merged: %v", n)
	}
}

func TestCoalesce(t *testing.T) {
	l := List{seg(0, 10), seg(15, 5), seg(100, 10)}
	if got := l.Coalesce(0); !got.Equal(l) {
		t.Fatalf("Coalesce(0) changed disjoint list: %v", got)
	}
	got := l.Coalesce(5)
	want := List{seg(0, 20), seg(100, 10)}
	if !got.Equal(want) {
		t.Fatalf("Coalesce(5) = %v, want %v", got, want)
	}
	got = l.Coalesce(1 << 40)
	if len(got) != 1 || got[0] != seg(0, 110) {
		t.Fatalf("Coalesce(big) = %v", got)
	}
	if got := (List{}).Coalesce(10); len(got) != 0 {
		t.Fatalf("Coalesce of empty = %v", got)
	}
}

func TestIntersectLists(t *testing.T) {
	a := List{seg(0, 10), seg(20, 10)}
	b := List{seg(5, 20)}
	got := a.Intersect(b)
	want := List{seg(5, 5), seg(20, 5)}
	if !got.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if got := a.Intersect(List{}); len(got) != 0 {
		t.Fatalf("Intersect with empty = %v", got)
	}
}

func TestClip(t *testing.T) {
	l := List{seg(0, 10), seg(20, 10), seg(40, 10)}
	got := l.Clip(seg(5, 30))
	want := List{seg(5, 5), seg(20, 10)}
	if !got.Equal(want) {
		t.Fatalf("Clip = %v, want %v", got, want)
	}
}

func TestGaps(t *testing.T) {
	l := List{seg(0, 10), seg(20, 10), seg(35, 5)}
	got := l.Gaps()
	want := List{seg(10, 10), seg(30, 5)}
	if !got.Equal(want) {
		t.Fatalf("Gaps = %v, want %v", got, want)
	}
	if got := (List{seg(0, 5)}).Gaps(); len(got) != 0 {
		t.Fatalf("Gaps of single = %v", got)
	}
}

func TestSplitCount(t *testing.T) {
	var l List
	for i := int64(0); i < 130; i++ {
		l = append(l, seg(i*10, 5))
	}
	batches := l.SplitCount(64)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if len(batches[0]) != 64 || len(batches[1]) != 64 || len(batches[2]) != 2 {
		t.Fatalf("batch sizes = %d,%d,%d", len(batches[0]), len(batches[1]), len(batches[2]))
	}
	var total int
	for _, b := range batches {
		total += len(b)
	}
	if total != 130 {
		t.Fatalf("total after split = %d", total)
	}
	if got := l.SplitCount(0); len(got) != 1 || len(got[0]) != 130 {
		t.Fatal("SplitCount(0) should return one batch")
	}
	if got := (List{}).SplitCount(64); got != nil {
		t.Fatalf("SplitCount of empty = %v", got)
	}
}

func TestSplitLength(t *testing.T) {
	l := List{seg(0, 10), seg(100, 25)}
	got := l.SplitLength(10)
	want := List{seg(0, 10), seg(100, 10), seg(110, 10), seg(120, 5)}
	if !got.Equal(want) {
		t.Fatalf("SplitLength = %v, want %v", got, want)
	}
	if got.TotalLength() != l.TotalLength() {
		t.Fatal("SplitLength changed total length")
	}
}

func TestValidateList(t *testing.T) {
	if err := (List{seg(0, 5), seg(-1, 2)}).Validate(); err == nil {
		t.Fatal("invalid list accepted")
	}
	if err := (List{seg(0, 5)}).Validate(); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
}

func randomList(r *rand.Rand, n int) List {
	l := make(List, n)
	for i := range l {
		l[i] = seg(int64(r.Intn(10000)), int64(r.Intn(100)))
	}
	return l
}

// Property: Normalize is idempotent and preserves covered bytes.
func TestNormalizeProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomList(r, int(n%50))
		norm := l.Normalize()
		if !norm.IsNormalized() {
			return false
		}
		if !norm.Normalize().Equal(norm) {
			return false
		}
		// Covered byte set must match: check by sampling positions.
		covered := func(list List, p int64) bool {
			for _, s := range list {
				if s.Contains(p) {
					return true
				}
			}
			return false
		}
		for i := 0; i < 200; i++ {
			p := int64(r.Intn(11000))
			if covered(l, p) != covered(norm, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect(a,b) ⊆ a and ⊆ b, and is symmetric in coverage.
func TestIntersectProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomList(r, 20), randomList(r, 20)
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if !ab.Equal(ba) {
			return false
		}
		if !ab.Intersect(a).Equal(ab) || !ab.Intersect(b).Equal(ab) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitCount preserves order, count and content.
func TestSplitCountProperty(t *testing.T) {
	f := func(seed int64, maxRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomList(r, 100)
		max := int(maxRaw%80) + 1
		var rejoined List
		for _, b := range l.SplitCount(max) {
			if len(b) > max {
				return false
			}
			rejoined = append(rejoined, b...)
		}
		return rejoined.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitLength preserves coverage exactly.
func TestSplitLengthProperty(t *testing.T) {
	f := func(seed int64, maxRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomList(r, 30)
		max := int64(maxRaw%64) + 1
		split := l.SplitLength(max)
		if split.TotalLength() != l.TotalLength() {
			return false
		}
		for _, s := range split {
			if s.Length > max {
				return false
			}
		}
		return split.Normalize().Equal(l.Normalize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescePacked(t *testing.T) {
	cases := []struct {
		name string
		in   List
		want List
		ok   bool
	}{
		{"empty", List{}, List{}, true},
		{"single", List{seg(4, 8)}, List{seg(4, 8)}, true},
		{"adjacent-merge", List{seg(0, 4), seg(4, 4), seg(8, 4)}, List{seg(0, 12)}, true},
		{"gap-preserved", List{seg(0, 4), seg(8, 4)}, List{seg(0, 4), seg(8, 4)}, true},
		{"mixed-runs", List{seg(0, 2), seg(2, 2), seg(10, 1), seg(11, 1), seg(20, 5)},
			List{seg(0, 4), seg(10, 2), seg(20, 5)}, true},
		{"empties-dropped", List{seg(0, 4), seg(4, 0), seg(4, 4), seg(100, 0)}, List{seg(0, 8)}, true},
		{"all-empty", List{seg(3, 0), seg(9, 0)}, List{}, true},
		{"unsorted", List{seg(8, 4), seg(0, 4)}, nil, false},
		{"overlap", List{seg(0, 6), seg(4, 4)}, nil, false},
		{"overlap-after-merge", List{seg(0, 4), seg(4, 4), seg(6, 2)}, nil, false},
	}
	for _, c := range cases {
		got, ok := c.in.CoalescePacked()
		if ok != c.ok {
			t.Errorf("%s: ok=%v, want %v", c.name, ok, c.ok)
			continue
		}
		if ok && !got.Equal(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// TestCoalescePackedPreservesStream checks the defining property on
// random sorted lists: expanding the merged extents yields exactly the
// input's byte sequence (same total, same file positions in order).
func TestCoalescePackedPreservesStream(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var l List
		off := int64(r.Intn(64))
		for i := 0; i < r.Intn(20); i++ {
			n := int64(r.Intn(5)) // empties included
			l = append(l, seg(off, n))
			off += n + int64(r.Intn(3)) // gap 0..2
		}
		merged, ok := l.CoalescePacked()
		if !ok {
			t.Fatalf("trial %d: sorted non-overlapping list rejected: %v", trial, l)
		}
		if got, want := merged.TotalLength(), l.TotalLength(); got != want {
			t.Fatalf("trial %d: total %d, want %d", trial, got, want)
		}
		if !merged.IsNormalized() {
			t.Fatalf("trial %d: merged list not normalized: %v", trial, merged)
		}
		// Byte-for-byte: walking the input stream and the merged stream
		// must visit identical file offsets.
		var inOffs, outOffs []int64
		for _, s := range l {
			for k := int64(0); k < s.Length; k++ {
				inOffs = append(inOffs, s.Offset+k)
			}
		}
		for _, s := range merged {
			for k := int64(0); k < s.Length; k++ {
				outOffs = append(outOffs, s.Offset+k)
			}
		}
		if len(inOffs) != len(outOffs) {
			t.Fatalf("trial %d: stream lengths differ", trial)
		}
		for i := range inOffs {
			if inOffs[i] != outOffs[i] {
				t.Fatalf("trial %d: stream position %d maps to %d, want %d", trial, i, outOffs[i], inOffs[i])
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	l := List{seg(0, 5)}
	c := l.Clone()
	c[0].Offset = 99
	if l[0].Offset != 0 {
		t.Fatal("Clone shares backing array")
	}
}

func BenchmarkNormalize(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	l := randomList(r, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Normalize()
	}
}

func BenchmarkSplitCount64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	l := randomList(r, 100000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.SplitCount(64)
	}
}
