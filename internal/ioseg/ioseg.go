// Package ioseg provides the region algebra used throughout the PVFS
// reproduction: contiguous byte extents ([offset, offset+length)) and
// operations over ordered lists of them.
//
// Noncontiguous I/O requests, stripe maps, data-sieving extents and the
// list I/O wire format all reduce to lists of Segment values, so this
// package is the shared vocabulary of the repository.
package ioseg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Segment is a contiguous byte extent starting at Offset and spanning
// Length bytes: the half-open interval [Offset, Offset+Length).
type Segment struct {
	Offset int64
	Length int64
}

// End returns the first byte past the segment.
func (s Segment) End() int64 { return s.Offset + s.Length }

// Empty reports whether the segment spans no bytes.
func (s Segment) Empty() bool { return s.Length == 0 }

// Contains reports whether byte position p falls inside the segment.
func (s Segment) Contains(p int64) bool { return p >= s.Offset && p < s.End() }

// Overlaps reports whether s and t share at least one byte.
func (s Segment) Overlaps(t Segment) bool {
	return s.Offset < t.End() && t.Offset < s.End()
}

// Adjacent reports whether s ends exactly where t begins or vice versa.
func (s Segment) Adjacent(t Segment) bool {
	return s.End() == t.Offset || t.End() == s.Offset
}

// Intersect returns the overlapping byte range of s and t. The second
// return value is false when the segments do not overlap.
func (s Segment) Intersect(t Segment) (Segment, bool) {
	lo := max64(s.Offset, t.Offset)
	hi := min64(s.End(), t.End())
	if lo >= hi {
		return Segment{}, false
	}
	return Segment{Offset: lo, Length: hi - lo}, true
}

// Shift returns the segment translated by delta bytes.
func (s Segment) Shift(delta int64) Segment {
	return Segment{Offset: s.Offset + delta, Length: s.Length}
}

// Split cuts the segment at absolute position p. The first piece covers
// [Offset, p) and the second [p, End). Splitting outside the segment
// returns the whole segment on one side and an empty one on the other.
func (s Segment) Split(p int64) (Segment, Segment) {
	switch {
	case p <= s.Offset:
		return Segment{Offset: s.Offset}, s
	case p >= s.End():
		return s, Segment{Offset: s.End()}
	default:
		return Segment{Offset: s.Offset, Length: p - s.Offset},
			Segment{Offset: p, Length: s.End() - p}
	}
}

func (s Segment) String() string {
	return fmt.Sprintf("[%d,+%d)", s.Offset, s.Length)
}

// Validate checks the segment for negative fields and int64 overflow.
func (s Segment) Validate() error {
	switch {
	case s.Offset < 0:
		return fmt.Errorf("ioseg: negative offset %d", s.Offset)
	case s.Length < 0:
		return fmt.Errorf("ioseg: negative length %d", s.Length)
	case s.Offset+s.Length < s.Offset:
		return fmt.Errorf("ioseg: segment [%d,+%d) overflows int64", s.Offset, s.Length)
	}
	return nil
}

// List is an ordered sequence of segments. Most operations require or
// produce a normalized list: sorted by offset, non-overlapping, with no
// empty segments (adjacent segments may remain distinct unless merged).
type List []Segment

// ErrMismatchedLists reports offset/length slices of different sizes.
var ErrMismatchedLists = errors.New("ioseg: offsets and lengths differ in count")

// FromOffLen builds a List from parallel offset and length slices, the
// shape of the pvfs_read_list interface in the paper.
func FromOffLen(offsets, lengths []int64) (List, error) {
	if len(offsets) != len(lengths) {
		return nil, ErrMismatchedLists
	}
	l := make(List, 0, len(offsets))
	for i := range offsets {
		s := Segment{Offset: offsets[i], Length: lengths[i]}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		if s.Empty() {
			continue
		}
		l = append(l, s)
	}
	return l, nil
}

// OffLen decomposes the list back into parallel offset/length slices.
func (l List) OffLen() (offsets, lengths []int64) {
	offsets = make([]int64, len(l))
	lengths = make([]int64, len(l))
	for i, s := range l {
		offsets[i] = s.Offset
		lengths[i] = s.Length
	}
	return offsets, lengths
}

// TotalLength returns the sum of the segment lengths.
func (l List) TotalLength() int64 {
	var n int64
	for _, s := range l {
		n += s.Length
	}
	return n
}

// ErrLengthOverflow reports a region list whose total length exceeds
// int64 space.
var ErrLengthOverflow = errors.New("ioseg: total length overflows int64")

// TotalLengthChecked is TotalLength with overflow detection: segment
// lengths from an untrusted peer may individually pass Validate yet
// sum past MaxInt64, wrapping negative. Negative segment lengths are
// rejected too, so a nil error guarantees a non-negative exact total.
func (l List) TotalLengthChecked() (int64, error) {
	var n int64
	for i, s := range l {
		if s.Length < 0 {
			return 0, fmt.Errorf("ioseg: segment %d: negative length %d", i, s.Length)
		}
		if n > math.MaxInt64-s.Length {
			return 0, ErrLengthOverflow
		}
		n += s.Length
	}
	return n, nil
}

// Count returns the number of segments.
func (l List) Count() int { return len(l) }

// Span returns the covering extent from the first byte of the lowest
// segment to the last byte of the highest. The second return value is
// false for an empty list. The list need not be sorted.
func (l List) Span() (Segment, bool) {
	if len(l) == 0 {
		return Segment{}, false
	}
	lo, hi := l[0].Offset, l[0].End()
	for _, s := range l[1:] {
		lo = min64(lo, s.Offset)
		hi = max64(hi, s.End())
	}
	return Segment{Offset: lo, Length: hi - lo}, true
}

// IsSorted reports whether segments appear in nondecreasing offset order.
func (l List) IsSorted() bool {
	return sort.SliceIsSorted(l, func(i, j int) bool { return l[i].Offset < l[j].Offset })
}

// IsNormalized reports whether the list is sorted, free of empty
// segments, and free of overlaps.
func (l List) IsNormalized() bool {
	for i, s := range l {
		if s.Empty() || s.Validate() != nil {
			return false
		}
		if i > 0 && l[i-1].End() > s.Offset {
			return false
		}
	}
	return true
}

// Normalize returns a sorted copy with empty segments dropped and
// overlapping or adjacent segments merged. The input is unchanged.
func (l List) Normalize() List {
	out := make(List, 0, len(l))
	for _, s := range l {
		if !s.Empty() {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Offset != out[j].Offset {
			return out[i].Offset < out[j].Offset
		}
		return out[i].Length < out[j].Length
	})
	merged := out[:0]
	for _, s := range out {
		if n := len(merged); n > 0 && merged[n-1].End() >= s.Offset {
			if e := s.End(); e > merged[n-1].End() {
				merged[n-1].Length = e - merged[n-1].Offset
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// Coalesce merges segments whose gap is at most maxGap bytes, in a
// sorted copy of the list. maxGap of 0 merges only adjacent/overlapping
// segments; a positive maxGap is the hybrid list+sieve coalescing rule
// from the paper's future work (§5): nearby regions are fetched as one.
// The returned list covers a superset of the input bytes when maxGap>0.
func (l List) Coalesce(maxGap int64) List {
	if len(l) == 0 {
		return List{}
	}
	sorted := append(List(nil), l...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	out := List{sorted[0]}
	for _, s := range sorted[1:] {
		last := &out[len(out)-1]
		if s.Offset <= last.End()+maxGap {
			if e := s.End(); e > last.End() {
				last.Length = e - last.Offset
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// CoalescePacked merges exactly-adjacent segments of a list that
// describes a packed byte stream: segment i's bytes occupy stream
// positions [sum(len 0..i-1), sum(len 0..i)). Merging is valid only
// when stream order equals file order — the list is sorted and free of
// overlaps — because then adjacent file extents are also adjacent in
// the stream, so the merged list describes the same stream byte for
// byte and a consumer may service each merged extent with a single
// contiguous I/O. Empty segments carry no stream bytes and are
// dropped. The second return value is false when the list is unsorted
// or self-overlapping; callers then must preserve per-segment order
// (a later overlapping write wins) and should fall back to sequential
// application.
func (l List) CoalescePacked() (List, bool) {
	out := make(List, 0, len(l))
	for _, s := range l {
		if s.Empty() {
			continue
		}
		if n := len(out); n > 0 {
			last := &out[n-1]
			if s.Offset == last.End() {
				last.Length += s.Length
				continue
			}
			if s.Offset < last.End() {
				return nil, false
			}
		}
		out = append(out, s)
	}
	return out, true
}

// CoalesceRuns is CoalescePacked plus the stream-position bookkeeping
// a batch builder needs: it returns the coalesced runs and, aligned
// with them, each run's starting position in the packed byte stream.
// ok is false under the same conditions as CoalescePacked (unsorted or
// overlapping list), in which case both returns are nil. A consumer
// submitting the whole gapped window as one batch (store.BatchIO) maps
// run i to the stream bytes [pos[i], pos[i]+runs[i].Length).
func (l List) CoalesceRuns() (runs List, pos []int64, ok bool) {
	runs, ok = l.CoalescePacked()
	if !ok {
		return nil, nil, false
	}
	pos = make([]int64, len(runs))
	var p int64
	for i, r := range runs {
		pos[i] = p
		p += r.Length
	}
	return runs, pos, true
}

// Intersect returns the normalized intersection of two lists.
func (l List) Intersect(m List) List {
	a, b := l.Normalize(), m.Normalize()
	var out List
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if s, ok := a[i].Intersect(b[j]); ok {
			out = append(out, s)
		}
		if a[i].End() < b[j].End() {
			i++
		} else {
			j++
		}
	}
	return out
}

// Clip returns the parts of the (normalized copy of the) list that fall
// within window.
func (l List) Clip(window Segment) List {
	var out List
	for _, s := range l.Normalize() {
		if c, ok := s.Intersect(window); ok {
			out = append(out, c)
		}
	}
	return out
}

// Gaps returns the holes between consecutive segments of the normalized
// list, restricted to the list's own span.
func (l List) Gaps() List {
	n := l.Normalize()
	var out List
	for i := 1; i < len(n); i++ {
		if g := n[i].Offset - n[i-1].End(); g > 0 {
			out = append(out, Segment{Offset: n[i-1].End(), Length: g})
		}
	}
	return out
}

// SplitCount cuts the list into batches of at most max segments each,
// preserving order. It is the 64-region trailing-data limit from the
// paper applied to an arbitrary list. max <= 0 yields a single batch.
func (l List) SplitCount(max int) []List {
	if max <= 0 || len(l) <= max {
		if len(l) == 0 {
			return nil
		}
		return []List{l}
	}
	out := make([]List, 0, (len(l)+max-1)/max)
	for start := 0; start < len(l); start += max {
		end := min(start+max, len(l))
		out = append(out, l[start:end])
	}
	return out
}

// SplitLength cuts every segment so that no piece exceeds max bytes,
// preserving order and total coverage. max <= 0 returns the list as is.
func (l List) SplitLength(max int64) List {
	if max <= 0 {
		return append(List(nil), l...)
	}
	var out List
	for _, s := range l {
		for s.Length > max {
			out = append(out, Segment{Offset: s.Offset, Length: max})
			s.Offset += max
			s.Length -= max
		}
		if !s.Empty() {
			out = append(out, s)
		}
	}
	return out
}

// Equal reports element-wise equality.
func (l List) Equal(m List) bool {
	if len(l) != len(m) {
		return false
	}
	for i := range l {
		if l[i] != m[i] {
			return false
		}
	}
	return true
}

// Validate checks every segment and returns the first error found.
func (l List) Validate() error {
	for i, s := range l {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the list.
func (l List) Clone() List { return append(List(nil), l...) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
