// Package sim is a small discrete-event simulation engine: a virtual
// clock, an event heap, and FCFS resources. The cluster performance
// model (internal/simcluster) is built on it to regenerate the paper's
// figures at Chiba City scale, where the slowest configurations take
// tens of thousands of seconds of real time (§4.2.1 notes multiple I/O
// writes were run only once because of their execution time).
//
// Times are int64 nanoseconds of virtual time.
package sim

import (
	"container/heap"
	"fmt"
)

// Engine is a discrete-event executor. Events scheduled for the same
// instant run in scheduling order (a stable tie-break), which keeps
// simulations deterministic.
type Engine struct {
	pq  eventHeap
	now int64
	seq int64
	ran int64
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() int64 { return e.now }

// Events returns the number of events processed so far.
func (e *Engine) Events() int64 { return e.ran }

// At schedules fn to run at virtual time t. Scheduling in the past is
// a programming error and panics (it would silently reorder causality).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d int64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the heap is empty and returns the final
// clock value.
func (e *Engine) Run() int64 {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.t
		e.ran++
		ev.fn()
	}
	return e.now
}

type event struct {
	t   int64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Resource is a single-server FCFS station: CPU, NIC direction, or
// disk. Acquire returns the completion time of a job of the given
// service duration arriving at `now`, and accumulates busy time for
// utilization reporting.
//
// Callers must invoke Acquire in nondecreasing arrival order for exact
// FCFS semantics; the engine's event ordering provides that when each
// acquisition happens inside an event scheduled at the arrival time.
type Resource struct {
	Name string
	free int64
	busy int64
}

// Acquire reserves the resource for service ns starting no earlier
// than now, returning the completion time.
func (r *Resource) Acquire(now, service int64) int64 {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := now
	if r.free > start {
		start = r.free
	}
	r.free = start + service
	r.busy += service
	return r.free
}

// Start returns when a job arriving at now would begin service,
// without reserving.
func (r *Resource) Start(now int64) int64 {
	if r.free > now {
		return r.free
	}
	return now
}

// Busy returns the accumulated busy time.
func (r *Resource) Busy() int64 { return r.busy }

// Barrier releases a continuation once n parties have arrived, at the
// time of the last arrival.
type Barrier struct {
	eng     *Engine
	n       int
	arrived int
	waiters []func()
	latest  int64
}

// NewBarrier creates a barrier for n parties on the engine.
func NewBarrier(eng *Engine, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{eng: eng, n: n}
}

// Arrive registers a party at virtual time t with continuation fn; all
// continuations run when the n-th party arrives (at the max arrival
// time). The barrier resets for reuse afterwards.
func (b *Barrier) Arrive(t int64, fn func()) {
	if t > b.latest {
		b.latest = t
	}
	b.arrived++
	b.waiters = append(b.waiters, fn)
	if b.arrived == b.n {
		release := b.latest
		waiters := b.waiters
		b.arrived = 0
		b.waiters = nil
		b.latest = 0
		for _, w := range waiters {
			b.eng.At(release, w)
		}
	}
}
