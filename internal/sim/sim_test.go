package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end = %d", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeStableOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("unstable same-time order: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var hits []int64
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
	if e.Events() != 2 {
		t.Fatalf("Events = %d", e.Events())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestResourceFCFS(t *testing.T) {
	var r Resource
	// Idle resource: job starts immediately.
	if done := r.Acquire(100, 50); done != 150 {
		t.Fatalf("done = %d, want 150", done)
	}
	// Arrival during service queues behind.
	if done := r.Acquire(120, 30); done != 180 {
		t.Fatalf("done = %d, want 180", done)
	}
	// Arrival after idle gap starts at arrival.
	if done := r.Acquire(1000, 10); done != 1010 {
		t.Fatalf("done = %d, want 1010", done)
	}
	if r.Busy() != 90 {
		t.Fatalf("busy = %d, want 90", r.Busy())
	}
}

func TestResourceStart(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	if got := r.Start(50); got != 100 {
		t.Fatalf("Start during busy = %d", got)
	}
	if got := r.Start(200); got != 200 {
		t.Fatalf("Start when idle = %d", got)
	}
}

func TestResourceZeroService(t *testing.T) {
	var r Resource
	if done := r.Acquire(5, 0); done != 5 {
		t.Fatalf("zero service done = %d", done)
	}
}

func TestNegativeServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative service did not panic")
		}
	}()
	var r Resource
	r.Acquire(0, -1)
}

func TestBarrierReleasesAtMax(t *testing.T) {
	e := New()
	b := NewBarrier(e, 3)
	var released []int64
	arrive := func(t0 int64) {
		e.At(t0, func() {
			b.Arrive(e.Now(), func() { released = append(released, e.Now()) })
		})
	}
	arrive(10)
	arrive(50)
	arrive(30)
	e.Run()
	if len(released) != 3 {
		t.Fatalf("released %d parties", len(released))
	}
	for _, r := range released {
		if r != 50 {
			t.Fatalf("release time %d, want 50 (max arrival)", r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := New()
	b := NewBarrier(e, 2)
	var times []int64
	// Round 1 at 10/20, round 2 at 30/40.
	e.At(10, func() { b.Arrive(10, func() { times = append(times, e.Now()) }) })
	e.At(20, func() {
		b.Arrive(20, func() {
			times = append(times, e.Now())
			e.At(30, func() { b.Arrive(30, func() { times = append(times, e.Now()) }) })
			e.At(40, func() { b.Arrive(40, func() { times = append(times, e.Now()) }) })
		})
	})
	e.Run()
	if len(times) != 4 {
		t.Fatalf("times = %v", times)
	}
	if times[0] != 20 || times[1] != 20 || times[2] != 40 || times[3] != 40 {
		t.Fatalf("times = %v", times)
	}
}

// An M/D/1-style sanity check: with deterministic arrivals faster than
// the service rate, the queue grows and the last completion equals
// first start + n*service.
func TestResourceSaturation(t *testing.T) {
	var r Resource
	const n, service = 1000, 10
	var last int64
	for i := int64(0); i < n; i++ {
		last = r.Acquire(i, service) // arrivals every 1ns, service 10ns
	}
	if want := int64(n * service); last != want {
		t.Fatalf("last completion = %d, want %d", last, want)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	var r Resource
	var count int
	var schedule func(t int64)
	schedule = func(t int64) {
		e.At(t, func() {
			count++
			if count < b.N {
				done := r.Acquire(e.Now(), 5)
				schedule(done)
			}
		})
	}
	schedule(0)
	b.ResetTimer()
	e.Run()
}
