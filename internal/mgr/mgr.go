// Package mgr implements the PVFS manager daemon: the metadata server
// that handles file creation, lookup, permissions-style metadata, and
// striping parameters (§2 of the paper).
//
// As in PVFS, the manager does not participate in read/write traffic:
// when a client opens a file, the manager returns the file handle,
// striping configuration, and the addresses of the I/O daemons; all
// data traffic then flows directly between client and I/O daemons.
package mgr

import (
	"log"
	"net"
	"sort"
	"sync"

	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

// meta is the manager's record for one file.
type meta struct {
	handle   uint64
	size     int64
	striping striping.Config
}

// Server is a running manager daemon.
type Server struct {
	iodAddrs []string
	srv      *pvfsnet.Server

	mu         sync.Mutex
	files      map[string]*meta
	nextHandle uint64
}

// New starts a manager on ln that hands out the given I/O daemon
// addresses (stripe order).
func New(ln net.Listener, iodAddrs []string, logger *log.Logger) *Server {
	s := &Server{
		iodAddrs:   append([]string(nil), iodAddrs...),
		files:      make(map[string]*meta),
		nextHandle: 1,
	}
	s.srv = pvfsnet.NewServer(ln, s.handle, logger)
	return s
}

// Listen starts a manager on addr.
func Listen(addr string, iodAddrs []string, logger *log.Logger) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(ln, iodAddrs, logger), nil
}

// Addr returns the manager's listen address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Net exposes the transport server, e.g. to install fault injection
// (pvfsnet.Faults) in recovery tests.
func (s *Server) Net() *pvfsnet.Server { return s.srv }

// Close stops the manager.
func (s *Server) Close() error { return s.srv.Close() }

func fail(st wire.Status) wire.Message {
	return wire.Message{Header: wire.Header{Status: st}}
}

func (s *Server) handle(req wire.Message) wire.Message {
	switch req.Type {
	case wire.TCreate:
		return s.create(req)
	case wire.TOpen, wire.TStat:
		return s.open(req)
	case wire.TRemove:
		return s.remove(req)
	case wire.TListDir:
		return s.listDir(req)
	case wire.TSetSize:
		return s.setSize(req)
	case wire.TPing:
		return wire.Message{Header: wire.Header{Handle: req.Handle}}
	default:
		return fail(wire.StatusInvalid)
	}
}

// rotatedAddrs returns the I/O daemon addresses in relative stripe
// order for cfg: index i of the result serves relative server i.
func (s *Server) rotatedAddrs(cfg striping.Config) []string {
	n := len(s.iodAddrs)
	out := make([]string, cfg.PCount)
	for i := 0; i < cfg.PCount; i++ {
		out[i] = s.iodAddrs[(cfg.Base+i)%n]
	}
	return out
}

func (s *Server) create(req wire.Message) wire.Message {
	var body wire.CreateReq
	if err := body.Unmarshal(req.Body); err != nil {
		return fail(wire.StatusProtocol)
	}
	if body.Name == "" {
		return fail(wire.StatusInvalid)
	}
	cfg := body.Striping
	if cfg.PCount == 0 {
		cfg.PCount = len(s.iodAddrs)
	}
	if cfg.StripeSize == 0 {
		cfg.StripeSize = striping.DefaultStripeSize
	}
	if cfg.PCount > len(s.iodAddrs) || cfg.Base >= len(s.iodAddrs) {
		return fail(wire.StatusInvalid)
	}
	if err := cfg.Validate(); err != nil {
		return fail(wire.StatusInvalid)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.files[body.Name]; exists {
		return fail(wire.StatusExists)
	}
	m := &meta{handle: s.nextHandle, striping: cfg}
	s.nextHandle++
	s.files[body.Name] = m
	info := wire.FileInfo{
		Handle:   m.handle,
		Size:     0,
		Striping: cfg,
		IODAddrs: s.rotatedAddrs(cfg),
	}
	return wire.Message{Header: wire.Header{Handle: m.handle}, Body: info.Marshal()}
}

func (s *Server) open(req wire.Message) wire.Message {
	var body wire.NameReq
	if err := body.Unmarshal(req.Body); err != nil {
		return fail(wire.StatusProtocol)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.files[body.Name]
	if !ok {
		return fail(wire.StatusNotFound)
	}
	info := wire.FileInfo{
		Handle:   m.handle,
		Size:     m.size,
		Striping: m.striping,
		IODAddrs: s.rotatedAddrs(m.striping),
	}
	return wire.Message{Header: wire.Header{Handle: m.handle}, Body: info.Marshal()}
}

func (s *Server) remove(req wire.Message) wire.Message {
	var body wire.NameReq
	if err := body.Unmarshal(req.Body); err != nil {
		return fail(wire.StatusProtocol)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.files[body.Name]
	if !ok {
		return fail(wire.StatusNotFound)
	}
	delete(s.files, body.Name)
	return wire.Message{Header: wire.Header{Handle: m.handle}}
}

func (s *Server) listDir(req wire.Message) wire.Message {
	s.mu.Lock()
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	resp := wire.ListDirResp{Names: names}
	return wire.Message{Body: resp.Marshal()}
}

// setSize records a logical size reported by a client. Sizes only grow
// unless the file is truncated via remove/create; concurrent writers
// race benignly to the max.
func (s *Server) setSize(req wire.Message) wire.Message {
	var body wire.SetSizeReq
	if err := body.Unmarshal(req.Body); err != nil {
		return fail(wire.StatusProtocol)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.files {
		if m.handle == body.Handle {
			if body.Size > m.size {
				m.size = body.Size
			}
			return wire.Message{Header: wire.Header{Handle: body.Handle}}
		}
	}
	return fail(wire.StatusNotFound)
}
