// Package mgr implements the PVFS manager daemon: the metadata server
// that handles file creation, lookup, permissions-style metadata, and
// striping parameters (§2 of the paper).
//
// As in PVFS, the manager does not participate in read/write traffic:
// when a client opens a file, the manager returns the file handle,
// striping configuration, and the addresses of the I/O daemons; all
// data traffic then flows directly between client and I/O daemons.
//
// Since the metadata plane was rebuilt on internal/meta (DESIGN.md
// §13), this package is a thin compatibility wrapper: one listener
// fronting a solo master replica (meta.Node with itself as the only
// peer, leading from construction) and one metadata shard (meta.Shard
// proposing through the node in-process). The wire behavior of the
// classic single manager is preserved exactly — same request grammar,
// same validation, same 1, 2, 3, ... handle sequence — while larger
// deployments run the same two roles as separate replicated masters
// and hash-partitioned shards.
package mgr

import (
	"log"
	"net"

	"pvfs/internal/meta"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/wire"
)

// Server is a running manager daemon: a solo metadata plane behind a
// single listener.
type Server struct {
	node  *meta.Node
	shard *meta.Shard
	srv   *pvfsnet.Server
}

// New starts a manager on ln that hands out the given I/O daemon
// addresses (stripe order). The solo master keeps its state in memory
// (the classic manager was never durable either); NewNode cannot fail
// without a state dir, so the error is surfaced only for symmetry
// with future durable wrappers.
func New(ln net.Listener, iodAddrs []string, logger *log.Logger) (*Server, error) {
	addr := ln.Addr().String()
	boot := &wire.ShardMap{
		Epoch:   1,
		Masters: []string{addr},
		Shards:  []string{addr},
		IODs:    append([]string(nil), iodAddrs...),
	}
	node, err := meta.NewNode(meta.NodeOptions{
		ID: 0, Peers: []string{addr}, Bootstrap: boot, Logger: logger,
	})
	if err != nil {
		return nil, err
	}
	shard := meta.NewShard(meta.ShardOptions{
		Index: 0, Proposer: meta.LocalProposer{Node: node}, Logger: logger,
	})
	s := &Server{node: node, shard: shard}
	s.srv = pvfsnet.NewServer(ln, s.handle, logger)
	return s, nil
}

// Listen starts a manager on addr.
func Listen(addr string, iodAddrs []string, logger *log.Logger) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s, err := New(ln, iodAddrs, logger)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// Addr returns the manager's listen address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Net exposes the transport server, e.g. to install fault injection
// (pvfsnet.Faults) in recovery tests.
func (s *Server) Net() *pvfsnet.Server { return s.srv }

// Node exposes the embedded solo master replica.
func (s *Server) Node() *meta.Node { return s.node }

// Shard exposes the embedded metadata shard.
func (s *Server) Shard() *meta.Shard { return s.shard }

// Stats returns the manager's combined metadata accounting.
func (s *Server) Stats() wire.ServerStats {
	st := s.shard.Stats()
	st.Add(s.node.Stats())
	return st
}

// Close stops the manager.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.shard.Close()
	s.node.Close()
	return err
}

// handle demultiplexes the single listener: consensus traffic goes to
// the master replica, everything else (the classic manager grammar
// plus the TMetaForward envelope) to the shard.
func (s *Server) handle(req wire.Message) wire.Message {
	switch req.Type {
	case wire.TMetaVote, wire.TMetaAppend, wire.TMetaPropose, wire.TMetaFetch:
		return s.node.Handle(req)
	case wire.TShardMap:
		// The node's copy is authoritative (committed); serve queries
		// from it and let installs fall through to the shard.
		if len(req.Body) == 0 {
			return s.node.Handle(req)
		}
		return s.shard.Handle(req)
	case wire.TServerStats:
		st := s.Stats()
		return wire.Message{Body: st.Marshal()}
	default:
		return s.shard.Handle(req)
	}
}
