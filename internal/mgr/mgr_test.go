package mgr_test

import (
	"testing"

	"pvfs/internal/mgr"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

func startMgr(t *testing.T, iods []string) (*mgr.Server, *pvfsnet.Conn) {
	t.Helper()
	srv, err := mgr.Listen("127.0.0.1:0", iods, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := pvfsnet.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func fourIODs() []string {
	return []string{"10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001", "10.0.0.4:7001"}
}

func create(t *testing.T, c *pvfsnet.Conn, name string, cfg striping.Config) wire.FileInfo {
	t.Helper()
	req := wire.CreateReq{Name: name, Striping: cfg}
	resp, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TCreate}, Body: req.Marshal()})
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	var info wire.FileInfo
	if err := info.Unmarshal(resp.Body); err != nil {
		t.Fatal(err)
	}
	return info
}

func TestCreateDefaults(t *testing.T) {
	_, c := startMgr(t, fourIODs())
	info := create(t, c, "a", striping.Config{})
	if info.Striping.PCount != 4 {
		t.Fatalf("pcount = %d, want all 4", info.Striping.PCount)
	}
	if info.Striping.StripeSize != striping.DefaultStripeSize {
		t.Fatalf("ssize = %d", info.Striping.StripeSize)
	}
	if len(info.IODAddrs) != 4 || info.IODAddrs[0] != "10.0.0.1:7001" {
		t.Fatalf("iods = %v", info.IODAddrs)
	}
	if info.Handle == 0 {
		t.Fatal("zero handle")
	}
}

func TestCreateWithBaseRotatesAddrs(t *testing.T) {
	_, c := startMgr(t, fourIODs())
	info := create(t, c, "rot", striping.Config{Base: 2, PCount: 3, StripeSize: 4096})
	want := []string{"10.0.0.3:7001", "10.0.0.4:7001", "10.0.0.1:7001"}
	if len(info.IODAddrs) != 3 {
		t.Fatalf("iods = %v", info.IODAddrs)
	}
	for i, a := range want {
		if info.IODAddrs[i] != a {
			t.Fatalf("iods = %v, want %v", info.IODAddrs, want)
		}
	}
}

func TestCreateDuplicateAndInvalid(t *testing.T) {
	_, c := startMgr(t, fourIODs())
	create(t, c, "dup", striping.Config{})
	req := wire.CreateReq{Name: "dup"}
	resp, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TCreate}, Body: req.Marshal()})
	if err == nil {
		t.Fatal("duplicate create accepted")
	}
	if resp.Status != wire.StatusExists {
		t.Fatalf("status = %v", resp.Status)
	}
	// Empty name.
	req = wire.CreateReq{Name: ""}
	if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TCreate}, Body: req.Marshal()}); err == nil {
		t.Fatal("empty name accepted")
	}
	// More servers than exist.
	req = wire.CreateReq{Name: "big", Striping: striping.Config{PCount: 9}}
	if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TCreate}, Body: req.Marshal()}); err == nil {
		t.Fatal("pcount 9 of 4 accepted")
	}
	// Base beyond server table.
	req = wire.CreateReq{Name: "base", Striping: striping.Config{Base: 7, PCount: 2}}
	if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TCreate}, Body: req.Marshal()}); err == nil {
		t.Fatal("base 7 of 4 accepted")
	}
}

func TestOpenStatRemove(t *testing.T) {
	_, c := startMgr(t, fourIODs())
	created := create(t, c, "f", striping.Config{})
	nameReq := wire.NameReq{Name: "f"}
	resp, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TOpen}, Body: nameReq.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	var info wire.FileInfo
	if err := info.Unmarshal(resp.Body); err != nil {
		t.Fatal(err)
	}
	if info.Handle != created.Handle {
		t.Fatalf("open handle %d != create handle %d", info.Handle, created.Handle)
	}
	// Stat behaves like open.
	if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TStat}, Body: nameReq.Marshal()}); err != nil {
		t.Fatal(err)
	}
	// Remove, then open must fail.
	if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TRemove}, Body: nameReq.Marshal()}); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Call(wire.Message{Header: wire.Header{Type: wire.TOpen}, Body: nameReq.Marshal()})
	if err == nil {
		t.Fatal("open after remove succeeded")
	}
	if resp.Status != wire.StatusNotFound {
		t.Fatalf("status = %v", resp.Status)
	}
	// Removing again fails with not-found.
	if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TRemove}, Body: nameReq.Marshal()}); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestListDirSorted(t *testing.T) {
	_, c := startMgr(t, fourIODs())
	for _, n := range []string{"zeta", "alpha", "mid"} {
		create(t, c, n, striping.Config{})
	}
	resp, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TListDir}})
	if err != nil {
		t.Fatal(err)
	}
	var ld wire.ListDirResp
	if err := ld.Unmarshal(resp.Body); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(ld.Names) != 3 {
		t.Fatalf("names = %v", ld.Names)
	}
	for i := range want {
		if ld.Names[i] != want[i] {
			t.Fatalf("names = %v, want %v", ld.Names, want)
		}
	}
}

func TestSetSizeMonotonic(t *testing.T) {
	_, c := startMgr(t, fourIODs())
	info := create(t, c, "sz", striping.Config{})
	set := func(size int64) {
		req := wire.SetSizeReq{Handle: info.Handle, Size: size}
		if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TSetSize}, Body: req.Marshal()}); err != nil {
			t.Fatal(err)
		}
	}
	set(1000)
	set(500) // shrink attempts are ignored (size is a high-water mark)
	resp, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TOpen}, Body: (&wire.NameReq{Name: "sz"}).Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	var got wire.FileInfo
	if err := got.Unmarshal(resp.Body); err != nil {
		t.Fatal(err)
	}
	if got.Size != 1000 {
		t.Fatalf("size = %d, want 1000", got.Size)
	}
	// Unknown handle.
	req := wire.SetSizeReq{Handle: 9999, Size: 1}
	if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TSetSize}, Body: req.Marshal()}); err == nil {
		t.Fatal("setsize on unknown handle succeeded")
	}
}

func TestUniqueHandles(t *testing.T) {
	_, c := startMgr(t, fourIODs())
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		info := create(t, c, string(rune('a'+i%26))+string(rune('0'+i/26)), striping.Config{})
		if seen[info.Handle] {
			t.Fatalf("handle %d reused", info.Handle)
		}
		seen[info.Handle] = true
	}
}

func TestMalformedBodies(t *testing.T) {
	_, c := startMgr(t, fourIODs())
	for _, typ := range []wire.MsgType{wire.TCreate, wire.TOpen, wire.TRemove, wire.TSetSize} {
		resp, err := c.Call(wire.Message{Header: wire.Header{Type: typ}, Body: []byte{0xFF}})
		if err == nil {
			t.Errorf("%v: malformed body accepted", typ)
		}
		if resp.Status == wire.StatusOK {
			t.Errorf("%v: OK status for malformed body", typ)
		}
	}
	// I/O request types are invalid at the manager.
	if _, err := c.Call(wire.Message{Header: wire.Header{Type: wire.TRead}}); err == nil {
		t.Error("manager accepted an I/O request")
	}
}
