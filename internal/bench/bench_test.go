package bench

import (
	"strings"
	"testing"

	"pvfs/internal/simcluster"
)

// quick returns a reduced-scale configuration that still exhibits
// every shape claim (seconds of wall time instead of minutes): the
// aggregate size shrinks with the access range so the per-access
// block size stays in the same regime as the paper's figures
// (sub-MSS blocks in the swept range).
func quick() Config {
	return Config{
		TotalBytes:       256 << 20,
		Accesses:         []int{25000, 50000, 100000},
		FlashClients:     []int{2, 4, 8},
		FlashGranularity: simcluster.GranIntersect,
	}
}

func seriesY(t *testing.T, f Figure, label string) []float64 {
	t.Helper()
	s, ok := f.SeriesByLabel(label)
	if !ok {
		t.Fatalf("%s: no series %q", f.ID, label)
	}
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

func increasing(ys []float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			return false
		}
	}
	return true
}

func TestFigure9Shapes(t *testing.T) {
	figs, err := Figure9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("fig9 has %d panels, want 3 (8/16/32 clients)", len(figs))
	}
	for _, f := range figs {
		multi := seriesY(t, f, "Multiple I/O")
		sieve := seriesY(t, f, "Data Sieving I/O")
		list := seriesY(t, f, "List I/O")
		// Multiple I/O grows with accesses.
		if !increasing(multi) {
			t.Errorf("%s: multiple I/O not increasing: %v", f.ID, multi)
		}
		// Sieve is flat: max within 10%% of min.
		lo, hi := sieve[0], sieve[0]
		for _, y := range sieve {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		if hi > 1.10*lo {
			t.Errorf("%s: sieve not flat: %v", f.ID, sieve)
		}
		// List beats multiple at every point, by ≥5x at the top.
		for i := range list {
			if list[i] >= multi[i] {
				t.Errorf("%s: list (%v) not below multiple (%v) at point %d", f.ID, list[i], multi[i], i)
			}
		}
		last := len(list) - 1
		if multi[last] < 5*list[last] {
			t.Errorf("%s: multiple/list gap = %.1f at top, want >= 5", f.ID, multi[last]/list[last])
		}
	}

	// Sieve time ~doubles when clients double (8 -> 16).
	s8 := seriesY(t, figs[0], "Data Sieving I/O")
	s16 := seriesY(t, figs[1], "Data Sieving I/O")
	ratio := s16[0] / s8[0]
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("sieve 16/8 client ratio = %.2f, want ~2", ratio)
	}
}

func TestFigure10WriteGap(t *testing.T) {
	figs, err := Figure10(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		multi := seriesY(t, f, "Multiple I/O")
		list := seriesY(t, f, "List I/O")
		if !increasing(multi) || !increasing(list) {
			t.Errorf("%s: write curves must grow: %v %v", f.ID, multi, list)
		}
		// Two orders of magnitude gap (the paper's headline claim).
		for i := range multi {
			ratio := multi[i] / list[i]
			if ratio < 25 || ratio > 400 {
				t.Errorf("%s: multiple/list = %.0f at point %d, want ~10^2", f.ID, ratio, i)
			}
		}
	}
}

func TestFigure11BlockShapes(t *testing.T) {
	figs, err := Figure11(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("fig11 has %d panels, want 3 (4/9/16 clients)", len(figs))
	}
	for _, f := range figs {
		multi := seriesY(t, f, "Multiple I/O")
		list := seriesY(t, f, "List I/O")
		if !increasing(multi) {
			t.Errorf("%s: multiple not increasing: %v", f.ID, multi)
		}
		last := len(list) - 1
		if multi[last] < 3*list[last] {
			t.Errorf("%s: multiple/list = %.1f, want >= 3", f.ID, multi[last]/list[last])
		}
	}
	// §4.2.2: block-block sieving accesses less impertinent data than
	// 1-D cyclic at the same client count (16 clients).
	cyc, err := Figure9(quick())
	if err != nil {
		t.Fatal(err)
	}
	cyc16 := seriesY(t, cyc[1], "Data Sieving I/O")  // fig9 16 clients
	blk16 := seriesY(t, figs[2], "Data Sieving I/O") // fig11 16 clients
	if blk16[0] >= cyc16[0] {
		t.Errorf("block-block sieve (%v) not below cyclic sieve (%v) at 16 clients", blk16[0], cyc16[0])
	}
}

func TestFigure12WriteGap(t *testing.T) {
	figs, err := Figure12(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		multi := seriesY(t, f, "Multiple I/O")
		list := seriesY(t, f, "List I/O")
		last := len(multi) - 1
		if ratio := multi[last] / list[last]; ratio < 25 {
			t.Errorf("%s: multiple/list = %.0f, want ~10^2", f.ID, ratio)
		}
	}
}

func TestFigure15Ordering(t *testing.T) {
	fig, err := Figure15(quick())
	if err != nil {
		t.Fatal(err)
	}
	multi := seriesY(t, fig, "Multiple I/O")
	sieve := seriesY(t, fig, "Data Sieving I/O")
	list := seriesY(t, fig, "List I/O")
	// The paper's FLASH ordering at its measured granularity:
	// sieve < list < multiple, with list more than an order below
	// multiple and sieve well below list (at small client counts).
	for i := range multi {
		if !(sieve[i] < list[i] && list[i] < multi[i]) {
			t.Errorf("clients=%v: ordering sieve(%.1f) < list(%.1f) < multiple(%.1f) violated",
				fig.Series[0].Points[i].X, sieve[i], list[i], multi[i])
		}
		if multi[i] < 10*list[i] {
			t.Errorf("multiple/list = %.1f at point %d, want > 10 ('a little over one order')",
				multi[i]/list[i], i)
		}
	}
	// Sieve grows with clients; multiple stays flat (§4.3.2).
	if !increasing(sieve) {
		t.Errorf("sieve not growing with clients: %v", sieve)
	}
	lastM := len(multi) - 1
	if multi[lastM] > 1.2*multi[0] || multi[0] > 1.2*multi[lastM] {
		t.Errorf("multiple I/O should be ~flat across clients: %v", multi)
	}
}

func TestFigure17ListWins(t *testing.T) {
	fig, err := Figure17(Config{})
	if err != nil {
		t.Fatal(err)
	}
	read := func(label string) float64 {
		s, ok := fig.SeriesByLabel(label)
		if !ok {
			t.Fatalf("missing series %q", label)
		}
		return s.Points[1].Y // phase 2 = read
	}
	multi, sieve, list := read("Multiple I/O"), read("Data Sieving I/O"), read("List I/O")
	// "list I/O is able to perform more than twice as well as either
	// of the other two methods" (§4.4.2).
	if multi < 2*list || sieve < 2*list {
		t.Errorf("list (%.3f) not 2x better than multiple (%.3f) and sieve (%.3f)", list, multi, sieve)
	}
}

func TestRequestCountsMatchPaper(t *testing.T) {
	rows := RequestCounts()
	want := map[string]int64{
		"flash/multiple":        983040,
		"flash/list":            30,
		"flash/list(intersect)": 15360,
		"tiled/multiple":        768,
		"tiled/list":            12,
		"tiled/datasieve":       1,
	}
	got := map[string]int64{}
	for _, r := range rows {
		got[r.Workload+"/"+r.Method] = r.PerProc
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d requests/proc, want %d", k, got[k], v)
		}
	}
}

func TestTableAndCSVRender(t *testing.T) {
	fig, err := Figure17(Config{})
	if err != nil {
		t.Fatal(err)
	}
	table := fig.Table()
	if !strings.Contains(table, "List I/O") || !strings.Contains(table, "fig17") {
		t.Errorf("table missing content:\n%s", table)
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "x,") || len(strings.Split(strings.TrimSpace(csv), "\n")) != 4 {
		t.Errorf("csv malformed:\n%s", csv)
	}
}
