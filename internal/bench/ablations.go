package bench

import (
	"fmt"

	"pvfs/internal/patterns"
	"pvfs/internal/simcluster"
	"pvfs/internal/striping"
)

// Ablations of the design choices DESIGN.md calls out. Each returns a
// Figure in the same format as the paper figures.

// AblationMaxRegions sweeps the trailing-data limit around the
// paper's 64 (§3.3 chose 64 so a request fits one Ethernet frame;
// larger limits need multi-frame requests but fewer of them).
func AblationMaxRegions(c Config) (Figure, error) {
	p := c.params()
	accesses := c.accesses()[len(c.accesses())-1]
	fig := Figure{
		ID:     "ablation-maxregions",
		Title:  fmt.Sprintf("Trailing-data limit sweep (1-D cyclic, 8 clients, %d accesses)", accesses),
		XLabel: "Regions per list request",
		YLabel: "Time (seconds)",
		Notes:  []string{"the paper's limit is 64 (one Ethernet frame of descriptors)"},
	}
	for _, write := range []bool{false, true} {
		label := "Read"
		if write {
			label = "Write"
		}
		s := Series{Label: label}
		for _, limit := range []int{16, 32, 64, 128, 256, 1024} {
			pat, err := patterns.NewCyclic1D(8, accesses, c.totalBytes())
			if err != nil {
				return fig, err
			}
			y := runPattern(p, pat, write, simcluster.MethodList,
				simcluster.MethodOptions{MaxRegions: limit})
			s.Points = append(s.Points, Point{X: float64(limit), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationGranularity compares list-entry construction modes on the
// FLASH checkpoint (DESIGN.md §3): the measured-behaviour intersect
// mode against the paper's file-region arithmetic.
func AblationGranularity(c Config) (Figure, error) {
	p := c.params()
	fig := Figure{
		ID:     "ablation-granularity",
		Title:  "FLASH list I/O entry granularity",
		XLabel: "Clients",
		YLabel: "Time (seconds)",
		Notes: []string{
			"intersect: one entry per (memory ∩ file) piece = 983,040/proc",
			"file-regions: one entry per contiguous file region = 1,920/proc",
		},
	}
	modes := []struct {
		label string
		g     simcluster.Granularity
	}{
		{"List I/O (intersect)", simcluster.GranIntersect},
		{"List I/O (file regions)", simcluster.GranFileRegions},
	}
	for _, mode := range modes {
		s := Series{Label: mode.label}
		for _, nc := range c.flashClients() {
			y := runPattern(p, patterns.DefaultFlash(nc), true, simcluster.MethodList,
				simcluster.MethodOptions{Granularity: mode.g})
			s.Points = append(s.Points, Point{X: float64(nc), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationHybridGap sweeps the hybrid list+sieve coalescing threshold
// (§5 future work) on the fine-grained cyclic read.
func AblationHybridGap(c Config) (Figure, error) {
	p := c.params()
	accesses := c.accesses()[len(c.accesses())-1]
	patFor := func() (patterns.Pattern, error) {
		return patterns.NewCyclic1D(8, accesses, c.totalBytes())
	}
	fig := Figure{
		ID:     "ablation-hybridgap",
		Title:  fmt.Sprintf("Hybrid list+sieve gap threshold (1-D cyclic read, 8 clients, %d accesses)", accesses),
		XLabel: "Coalescing gap (bytes)",
		YLabel: "Time (seconds)",
		Notes:  []string{"gap 0 is plain list I/O; large gaps degenerate toward data sieving"},
	}
	s := Series{Label: "Hybrid list I/O"}
	for _, gap := range []int64{0, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 1 << 20} {
		pat, err := patFor()
		if err != nil {
			return fig, err
		}
		y := runPattern(p, pat, false, simcluster.MethodList,
			simcluster.MethodOptions{CoalesceGapBytes: gap})
		s.Points = append(s.Points, Point{X: float64(gap), Y: y})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AblationStrided compares list I/O against the datatype-descriptor
// extension as fragmentation grows (§5: descriptors eliminate "the
// linear relationship between the number of contiguous regions and
// the number of I/O requests").
func AblationStrided(c Config) (Figure, error) {
	p := c.params()
	fig := Figure{
		ID:     "ablation-strided",
		Title:  "List I/O vs strided descriptors (1-D cyclic read, 8 clients)",
		XLabel: "Number of Accesses (per client)",
		YLabel: "Time (seconds)",
	}
	for _, m := range []simcluster.Method{simcluster.MethodList, simcluster.MethodStrided} {
		s := Series{Label: methodLabel(m)}
		for _, a := range c.accesses() {
			pat, err := patterns.NewCyclic1D(8, a, c.totalBytes())
			if err != nil {
				return fig, err
			}
			y := runPattern(p, pat, false, m, simcluster.MethodOptions{})
			s.Points = append(s.Points, Point{X: float64(a), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationServers sweeps the I/O daemon count (the paper fixes 8;
// §2 notes striping and server counts are user-controlled).
func AblationServers(c Config) (Figure, error) {
	base := c.params()
	accesses := c.accesses()[0]
	fig := Figure{
		ID:     "ablation-servers",
		Title:  fmt.Sprintf("I/O daemon count sweep (1-D cyclic read, 8 clients, %d accesses)", accesses),
		XLabel: "I/O daemons",
		YLabel: "Time (seconds)",
	}
	for _, m := range []simcluster.Method{simcluster.MethodMultiple, simcluster.MethodSieve, simcluster.MethodList} {
		s := Series{Label: methodLabel(m)}
		for _, servers := range []int{2, 4, 8, 16} {
			p := base
			p.Servers = servers
			p.Striping = striping.Config{PCount: servers, StripeSize: striping.DefaultStripeSize}
			pat, err := patterns.NewCyclic1D(8, accesses, c.totalBytes())
			if err != nil {
				return fig, err
			}
			y := runPattern(p, pat, false, m, simcluster.MethodOptions{})
			s.Points = append(s.Points, Point{X: float64(servers), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationNetwork replays the 1-D cyclic experiment on the cluster's
// unused Myrinet fabric (simcluster.Myrinet; §4.1 notes the cards were
// present). It separates what the network stack owes the multiple-I/O
// pathology from what the request count owes it: without the TCP
// small-write stall the write gap collapses from ~2 orders of
// magnitude toward the pure request-count ratio.
func AblationNetwork(c Config) (Figure, error) {
	accesses := c.accesses()[len(c.accesses())-1]
	fig := Figure{
		ID:     "ablation-network",
		Title:  fmt.Sprintf("Fast Ethernet vs Myrinet (1-D cyclic, 8 clients, %d accesses)", accesses),
		XLabel: "Method / direction",
		YLabel: "Time (seconds)",
		Notes: []string{
			"fast-ethernet is the paper's measured configuration",
			"myrinet is the counterfactual: same daemons, same requests, OS-bypass network",
			"x axis: 0 = multiple read, 1 = multiple write, 2 = list read, 3 = list write",
		},
	}
	nets := []struct {
		label string
		p     simcluster.Params
	}{
		{"Fast Ethernet", c.params()},
		{"Myrinet", myrinetAt(c)},
	}
	for _, net := range nets {
		s := Series{Label: net.label}
		x := 0.0
		for _, m := range []simcluster.Method{simcluster.MethodMultiple, simcluster.MethodList} {
			for _, write := range []bool{false, true} {
				pat, err := patterns.NewCyclic1D(8, accesses, c.totalBytes())
				if err != nil {
					return fig, err
				}
				y := runPattern(net.p, pat, write, m, simcluster.MethodOptions{})
				s.Points = append(s.Points, Point{X: x, Y: y})
				x++
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// myrinetAt scales the Myrinet preset to the config's server count.
func myrinetAt(c Config) simcluster.Params {
	base := c.params()
	p := simcluster.Myrinet()
	p.Servers = base.Servers
	p.Striping = base.Striping
	return p
}

// AblationStripeSize sweeps the stripe unit around the paper's 16 KiB
// default (§4.1). Small stripes scatter each list batch over more
// servers (more, smaller requests); large stripes concentrate each
// client on fewer servers (less parallelism per call).
func AblationStripeSize(c Config) (Figure, error) {
	base := c.params()
	accesses := c.accesses()[len(c.accesses())-1]
	fig := Figure{
		ID:     "ablation-stripesize",
		Title:  fmt.Sprintf("Stripe size sweep (1-D cyclic read, 8 clients, %d accesses)", accesses),
		XLabel: "Stripe size (bytes)",
		YLabel: "Time (seconds)",
		Notes:  []string{"the paper uses the 16 KiB default stripe"},
	}
	for _, m := range []simcluster.Method{simcluster.MethodMultiple, simcluster.MethodSieve, simcluster.MethodList} {
		s := Series{Label: methodLabel(m)}
		for _, ss := range []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
			p := base
			p.Striping = striping.Config{PCount: base.Servers, StripeSize: ss}
			pat, err := patterns.NewCyclic1D(8, accesses, c.totalBytes())
			if err != nil {
				return fig, err
			}
			y := runPattern(p, pat, false, m, simcluster.MethodOptions{})
			s.Points = append(s.Points, Point{X: float64(ss), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Ablations runs the full suite.
func Ablations(c Config) ([]Figure, error) {
	var out []Figure
	for _, gen := range []func(Config) (Figure, error){
		AblationMaxRegions, AblationGranularity, AblationHybridGap,
		AblationStrided, AblationServers, AblationNetwork, AblationStripeSize,
	} {
		f, err := gen(c)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
