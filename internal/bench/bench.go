// Package bench defines the paper's experiments (DESIGN.md §4): for
// every figure in the evaluation it builds the workload, runs the
// cluster model, and emits the series the figure plots. The real-mode
// (TCP) counterpart for small scales lives in cmd/pvfs-bench.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"pvfs/internal/patterns"
	"pvfs/internal/simcluster"
)

// Point is one (x, seconds) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Config scales the experiments. The zero value is full paper scale.
type Config struct {
	// Params of the modeled cluster; zero selects ChibaCity.
	Params simcluster.Params
	// Accesses are the x-axis sample points (per-client noncontiguous
	// regions); zero selects the paper's 100k..1M range.
	Accesses []int
	// TotalBytes is the aggregate artificial-benchmark size; zero
	// selects the paper's 1 GiB.
	TotalBytes int64
	// FlashClients are the FLASH client counts; zero selects 2..32.
	FlashClients []int
	// Granularity used for FLASH list I/O; the paper's measured
	// behaviour corresponds to GranIntersect (DESIGN.md §3).
	FlashGranularity simcluster.Granularity
}

func (c Config) params() simcluster.Params {
	if c.Params.Servers == 0 {
		return simcluster.ChibaCity()
	}
	return c.Params
}

func (c Config) accesses() []int {
	if len(c.Accesses) == 0 {
		return []int{100000, 250000, 500000, 750000, 1000000}
	}
	return c.Accesses
}

func (c Config) totalBytes() int64 {
	if c.TotalBytes == 0 {
		return 1 << 30
	}
	return c.TotalBytes
}

func (c Config) flashClients() []int {
	if len(c.FlashClients) == 0 {
		return []int{2, 4, 8, 16, 32}
	}
	return c.FlashClients
}

// runPattern simulates one (pattern, method, direction) and returns
// seconds.
func runPattern(p simcluster.Params, pat patterns.Pattern, write bool, m simcluster.Method, opts simcluster.MethodOptions) float64 {
	res := simcluster.Run(simcluster.BuildWorkload(p, pat, write, m, opts))
	return res.Duration.Seconds()
}

// artificialSeries sweeps accesses for one client count and method set.
func (c Config) artificialSeries(mkPattern func(accesses int) (patterns.Pattern, error), write bool, methods []simcluster.Method) ([]Series, error) {
	p := c.params()
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Label = methodLabel(m)
	}
	for _, a := range c.accesses() {
		pat, err := mkPattern(a)
		if err != nil {
			return nil, err
		}
		for i, m := range methods {
			y := runPattern(p, pat, write, m, simcluster.MethodOptions{})
			series[i].Points = append(series[i].Points, Point{X: float64(a), Y: y})
		}
	}
	return series, nil
}

func methodLabel(m simcluster.Method) string {
	switch m {
	case simcluster.MethodMultiple:
		return "Multiple I/O"
	case simcluster.MethodSieve:
		return "Data Sieving I/O"
	case simcluster.MethodList:
		return "List I/O"
	case simcluster.MethodStrided:
		return "Strided (datatype) I/O"
	}
	return m.String()
}

// Figure9 regenerates the one-dimensional cyclic read plots for
// 8/16/32 clients.
func Figure9(c Config) ([]Figure, error) {
	return c.cyclicFigures("fig9", "One-Dimensional Cyclic Read", false,
		[]simcluster.Method{simcluster.MethodMultiple, simcluster.MethodSieve, simcluster.MethodList},
		[]int{8, 16, 32})
}

// Figure10 regenerates the one-dimensional cyclic write plots (the
// paper omits data sieving for parallel writes, §4.2.1).
func Figure10(c Config) ([]Figure, error) {
	return c.cyclicFigures("fig10", "One-Dimensional Cyclic Write", true,
		[]simcluster.Method{simcluster.MethodMultiple, simcluster.MethodList},
		[]int{8, 16, 32})
}

func (c Config) cyclicFigures(id, title string, write bool, methods []simcluster.Method, clients []int) ([]Figure, error) {
	var out []Figure
	for _, nc := range clients {
		nc := nc
		series, err := c.artificialSeries(func(a int) (patterns.Pattern, error) {
			return patterns.NewCyclic1D(nc, a, c.totalBytes())
		}, write, methods)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure{
			ID:     fmt.Sprintf("%s-%dclients", id, nc),
			Title:  fmt.Sprintf("%s - %d clients", title, nc),
			XLabel: "Number of Accesses (per client)",
			YLabel: "Time (seconds)",
			Series: series,
		})
	}
	return out, nil
}

// Figure11 regenerates the block-block read plots for 4/9/16 clients.
func Figure11(c Config) ([]Figure, error) {
	return c.blockFigures("fig11", "Block-Block Read", false,
		[]simcluster.Method{simcluster.MethodMultiple, simcluster.MethodSieve, simcluster.MethodList})
}

// Figure12 regenerates the block-block write plots for 4/9/16 clients.
func Figure12(c Config) ([]Figure, error) {
	return c.blockFigures("fig12", "Block-Block Write", true,
		[]simcluster.Method{simcluster.MethodMultiple, simcluster.MethodList})
}

func (c Config) blockFigures(id, title string, write bool, methods []simcluster.Method) ([]Figure, error) {
	var out []Figure
	for _, nc := range []int{4, 9, 16} {
		nc := nc
		series, err := c.artificialSeries(func(a int) (patterns.Pattern, error) {
			return patterns.NewBlockBlock(nc, a, c.totalBytes())
		}, write, methods)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure{
			ID:     fmt.Sprintf("%s-%dclients", id, nc),
			Title:  fmt.Sprintf("%s - %d clients", title, nc),
			XLabel: "Number of Accesses (per client)",
			YLabel: "Time (seconds)",
			Series: series,
		})
	}
	return out, nil
}

// Figure15 regenerates the FLASH I/O bar chart: checkpoint write time
// per method and client count.
func Figure15(c Config) (Figure, error) {
	p := c.params()
	methods := []simcluster.Method{simcluster.MethodMultiple, simcluster.MethodSieve, simcluster.MethodList}
	fig := Figure{
		ID:     "fig15",
		Title:  "FLASH I/O Benchmark (checkpoint write)",
		XLabel: "Clients",
		YLabel: "Time (seconds)",
		Notes: []string{
			"list I/O uses " + granName(c.FlashGranularity) + " entries (see DESIGN.md §3 and EXPERIMENTS.md)",
			"data sieving writes serialized by barrier as in §4.3.1",
		},
	}
	for _, m := range methods {
		s := Series{Label: methodLabel(m)}
		for _, nc := range c.flashClients() {
			flash := patterns.DefaultFlash(nc)
			opts := simcluster.MethodOptions{}
			if m == simcluster.MethodList {
				opts.Granularity = c.FlashGranularity
			}
			y := runPattern(p, flash, true, m, opts)
			s.Points = append(s.Points, Point{X: float64(nc), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func granName(g simcluster.Granularity) string {
	if g == simcluster.GranIntersect {
		return "intersect-granularity"
	}
	return "file-region-granularity"
}

// Figure17 regenerates the tiled visualization bar chart: open, read,
// and close time per method for 6 clients.
func Figure17(c Config) (Figure, error) {
	p := c.params()
	tiled := patterns.DefaultTiled()
	methods := []simcluster.Method{simcluster.MethodMultiple, simcluster.MethodSieve, simcluster.MethodList}
	fig := Figure{
		ID:     "fig17",
		Title:  "Tiled Visualization I/O - 6 clients",
		XLabel: "Phase (1=open, 2=read, 3=close)",
		YLabel: "Time (seconds)",
	}
	// Open/close: one manager round trip per rank, concurrently.
	mgrOnly := func() float64 {
		w := simcluster.WithOpenClose(simcluster.Workload{
			Name:       "tiled-openclose",
			Params:     p,
			RankStages: make([][]simcluster.Stage, tiled.Ranks()),
		})
		// The wrapper added open+close; halve for one phase.
		return simcluster.Run(w).Duration.Seconds() / 2
	}
	oc := mgrOnly()
	for _, m := range methods {
		read := runPattern(p, tiled, false, m, simcluster.MethodOptions{})
		fig.Series = append(fig.Series, Series{
			Label: methodLabel(m),
			Points: []Point{
				{X: 1, Y: oc},
				{X: 2, Y: read},
				{X: 3, Y: oc},
			},
		})
	}
	return fig, nil
}

// RequestCountRow is one line of the request-arithmetic table
// (§4.3.1 / §4.4.1), the paper's derived numbers.
type RequestCountRow struct {
	Workload string
	Method   string
	PerProc  int64
}

// RequestCounts reproduces the paper's request arithmetic exactly.
func RequestCounts() []RequestCountRow {
	p := simcluster.ChibaCity()
	flash := patterns.DefaultFlash(4)
	tiled := patterns.DefaultTiled()
	rows := []RequestCountRow{}
	add := func(workload string, pat patterns.Pattern, m simcluster.Method, opts simcluster.MethodOptions, ranks int) {
		c := simcluster.CountWorkload(simcluster.BuildWorkload(p, pat, workload == "flash", m, opts))
		rows = append(rows, RequestCountRow{
			Workload: workload,
			Method:   m.String() + optsSuffix(opts),
			PerProc:  c.Batches / int64(ranks),
		})
	}
	add("flash", flash, simcluster.MethodMultiple, simcluster.MethodOptions{}, 4)
	add("flash", flash, simcluster.MethodList, simcluster.MethodOptions{Granularity: simcluster.GranFileRegions}, 4)
	add("flash", flash, simcluster.MethodList, simcluster.MethodOptions{Granularity: simcluster.GranIntersect}, 4)
	add("flash", flash, simcluster.MethodSieve, simcluster.MethodOptions{}, 4)
	add("tiled", tiled, simcluster.MethodMultiple, simcluster.MethodOptions{}, 6)
	add("tiled", tiled, simcluster.MethodList, simcluster.MethodOptions{}, 6)
	add("tiled", tiled, simcluster.MethodSieve, simcluster.MethodOptions{}, 6)
	return rows
}

func optsSuffix(opts simcluster.MethodOptions) string {
	if opts.Granularity == simcluster.GranIntersect {
		return "(intersect)"
	}
	return ""
}

// Table renders a figure as an aligned text table: one row per x
// value, one column per series.
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s [%s]\n", f.Title, f.ID)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# note: %s\n", n)
	}
	// Collect x values.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			xs[pt.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-14.0f", x)
		for _, s := range f.Series {
			y := lookup(s, x)
			if y < 0 {
				fmt.Fprintf(&b, " %22s", "-")
			} else {
				fmt.Fprintf(&b, " %22.3f", y)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders a figure as comma-separated values.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	b.WriteString("\n")
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			xs[pt.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			y := lookup(s, x)
			if y < 0 {
				b.WriteString(",")
			} else {
				fmt.Fprintf(&b, ",%.4f", y)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func lookup(s Series, x float64) float64 {
	for _, pt := range s.Points {
		if pt.X == x {
			return pt.Y
		}
	}
	return -1
}

// SeriesByLabel finds a series in a figure.
func (f Figure) SeriesByLabel(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}
