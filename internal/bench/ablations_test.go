package bench

import (
	"testing"

	"pvfs/internal/simcluster"
)

func ablationConfig() Config {
	return Config{
		TotalBytes:       128 << 20,
		Accesses:         []int{25000, 100000},
		FlashClients:     []int{2, 4},
		FlashGranularity: simcluster.GranIntersect,
	}
}

func TestAblationMaxRegionsMonotoneReads(t *testing.T) {
	fig, err := AblationMaxRegions(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	read, ok := fig.SeriesByLabel("Read")
	if !ok {
		t.Fatal("no Read series")
	}
	// Larger limits can only help reads (fewer requests, same bytes).
	for i := 1; i < len(read.Points); i++ {
		if read.Points[i].Y > read.Points[i-1].Y*1.02 {
			t.Fatalf("read time rose with larger limit: %v", read.Points)
		}
	}
	// The paper's 64 must appear on the axis.
	found := false
	for _, p := range read.Points {
		if p.X == 64 {
			found = true
		}
	}
	if !found {
		t.Fatal("limit 64 missing from sweep")
	}
}

func TestAblationGranularityGap(t *testing.T) {
	fig, err := AblationGranularity(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	inter, ok1 := fig.SeriesByLabel("List I/O (intersect)")
	file, ok2 := fig.SeriesByLabel("List I/O (file regions)")
	if !ok1 || !ok2 {
		t.Fatal("missing series")
	}
	for i := range inter.Points {
		ratio := inter.Points[i].Y / file.Points[i].Y
		if ratio < 20 {
			t.Fatalf("granularity gap = %.1f at %v clients, want > 20x",
				ratio, inter.Points[i].X)
		}
	}
}

func TestAblationServersSieveScales(t *testing.T) {
	fig, err := AblationServers(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	sieve, ok := fig.SeriesByLabel("Data Sieving I/O")
	if !ok {
		t.Fatal("missing sieve series")
	}
	// Bandwidth-bound: time at 2 servers ~2x time at 4 servers.
	if len(sieve.Points) < 2 {
		t.Fatal("too few points")
	}
	ratio := sieve.Points[0].Y / sieve.Points[1].Y
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("sieve 2->4 server speedup = %.2f, want ~2", ratio)
	}
}

func TestAblationStridedFlatInAccesses(t *testing.T) {
	fig, err := AblationStrided(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	str, ok := fig.SeriesByLabel("Strided (datatype) I/O")
	if !ok {
		t.Fatal("missing strided series")
	}
	lo, hi := str.Points[0].Y, str.Points[0].Y
	for _, p := range str.Points {
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	// Descriptor requests are access-count independent; only the
	// per-region server cost grows slightly.
	if hi > 1.5*lo {
		t.Fatalf("strided time not ~flat in accesses: [%f, %f]", lo, hi)
	}
}

func TestAblationsSuiteRuns(t *testing.T) {
	figs, err := Ablations(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 7 {
		t.Fatalf("suite produced %d figures, want 7", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) == 0 || f.ID == "" {
			t.Fatalf("figure %q malformed", f.Title)
		}
	}
}

// TestAblationNetworkCollapsesWriteGap: on Myrinet (no TCP small-write
// stall, OS-bypass request costs) multiple-I/O writes must fall far
// below their Fast Ethernet time — the pathology of Figs. 10/12 is a
// network-stack artifact on top of the request-count problem.
func TestAblationNetworkCollapsesWriteGap(t *testing.T) {
	fig, err := AblationNetwork(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	eth, ok1 := fig.SeriesByLabel("Fast Ethernet")
	myr, ok2 := fig.SeriesByLabel("Myrinet")
	if !ok1 || !ok2 {
		t.Fatal("missing network series")
	}
	if len(eth.Points) != 4 || len(myr.Points) != 4 {
		t.Fatalf("points = %d/%d, want 4 each (multiple/list × read/write)",
			len(eth.Points), len(myr.Points))
	}
	// Point 1 is multiple-I/O write (see series construction order).
	ethW, myrW := eth.Points[1].Y, myr.Points[1].Y
	if ethW < 10*myrW {
		t.Fatalf("multiple-I/O write: ethernet %.1fs vs myrinet %.1fs, want ≥ 10x gap", ethW, myrW)
	}
	// List I/O still beats multiple I/O on Myrinet (request counts
	// alone preserve the ordering, §3.4).
	if myr.Points[2].Y >= myr.Points[0].Y {
		t.Fatalf("list read (%.2fs) not faster than multiple read (%.2fs) on myrinet",
			myr.Points[2].Y, myr.Points[0].Y)
	}
}

func TestAblationStripeSizeShape(t *testing.T) {
	fig, err := AblationStripeSize(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3 methods", len(fig.Series))
	}
	for _, s := range fig.Series {
		found16k := false
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s: nonpositive time at stripe %v", s.Label, p.X)
			}
			if p.X == 16384 {
				found16k = true
			}
		}
		if !found16k {
			t.Fatalf("%s: paper's 16 KiB stripe missing from sweep", s.Label)
		}
	}
}
