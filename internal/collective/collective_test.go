package collective_test

import (
	"bytes"
	"fmt"
	"testing"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/collective"
	"pvfs/internal/ioseg"
	"pvfs/internal/patterns"
	"pvfs/internal/striping"
)

func startCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Options{NumIOD: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// runCollective drives a collective op with one goroutine per rank,
// each with its own FS session.
func runCollective(t *testing.T, c *cluster.Cluster, name string, ranks int,
	fn func(rank int, g *collective.Group, f *client.File) error) {
	t.Helper()
	g := collective.NewGroup(ranks)
	err := cluster.RunRanks(ranks, func(rank int) error {
		fs, err := c.Connect()
		if err != nil {
			return err
		}
		defer fs.Close()
		f, err := fs.Open(name)
		if err != nil {
			return err
		}
		return fn(rank, g, f)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveWriteInterleaved(t *testing.T) {
	// 1-D cyclic interleave: per-rank accesses are noncontiguous but
	// the union is contiguous — the two-phase best case. The file
	// image must equal the interleave.
	c := startCluster(t)
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Create("coll.dat", striping.Config{PCount: 4, StripeSize: 128}); err != nil {
		t.Fatal(err)
	}

	const (
		ranks     = 4
		blockSize = 64
		blocks    = 16
	)
	before := c.TotalStats()
	runCollective(t, c, "coll.dat", ranks, func(rank int, g *collective.Group, f *client.File) error {
		arena := bytes.Repeat([]byte{byte('A' + rank)}, blockSize*blocks)
		var mem, file ioseg.List
		for b := int64(0); b < blocks; b++ {
			mem = append(mem, ioseg.Segment{Offset: b * blockSize, Length: blockSize})
			file = append(file, ioseg.Segment{Offset: (b*ranks + int64(rank)) * blockSize, Length: blockSize})
		}
		return g.WriteAll(rank, f, arena, mem, file)
	})
	after := c.TotalStats()

	// Two-phase: each aggregator issues ~1 contiguous write; with 4
	// servers that is at most ranks * servers contiguous requests —
	// far below the 64 list entries the same pattern needs.
	if reqs := after.Requests - before.Requests; reqs > int64(ranks*4) {
		t.Fatalf("collective write used %d requests, want <= %d", reqs, ranks*4)
	}
	if after.ListRequests != before.ListRequests {
		t.Fatalf("contiguous union should not need list I/O")
	}

	fsv, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fsv.Close()
	f, err := fsv.Open("coll.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, ranks*blocks*blockSize)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte('A' + (i/blockSize)%ranks)
		if b != want {
			t.Fatalf("byte %d = %c, want %c", i, b, want)
		}
	}
}

func TestCollectiveWriteWithHolesFallsBackToList(t *testing.T) {
	// Ranks cover only half the stripe cells: domains have holes, so
	// aggregators must use list I/O and preserve unwritten bytes.
	c := startCluster(t)
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f0, err := fs.Create("holes.dat", striping.Config{PCount: 4, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{0x11}, 4096)
	if _, err := f0.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}

	const ranks = 2
	before := c.TotalStats()
	runCollective(t, c, "holes.dat", ranks, func(rank int, g *collective.Group, f *client.File) error {
		var mem, file ioseg.List
		var pos int64
		for b := int64(0); b < 8; b++ {
			// Every other 32-byte cell, offset by rank: holes remain.
			off := (b*ranks + int64(rank)) * 128
			file = append(file, ioseg.Segment{Offset: off, Length: 32})
			mem = append(mem, ioseg.Segment{Offset: pos, Length: 32})
			pos += 32
		}
		arena := bytes.Repeat([]byte{0xEE}, int(pos))
		return g.WriteAll(rank, f, arena, mem, file)
	})
	after := c.TotalStats()
	if after.ListRequests == before.ListRequests {
		t.Fatal("holey domains should fall back to list I/O")
	}

	got := make([]byte, 4096)
	if _, err := f0.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		want := byte(0x11)
		if i%128 < 32 && i < 2048 {
			want = 0xEE
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestCollectiveReadRoundTrip(t *testing.T) {
	c := startCluster(t)
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f0, err := fs.Create("cread.dat", striping.Config{PCount: 4, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	image := make([]byte, 8192)
	for i := range image {
		image[i] = byte(i * 7)
	}
	if _, err := f0.WriteAt(image, 0); err != nil {
		t.Fatal(err)
	}

	const ranks = 4
	results := make([][]byte, ranks)
	runCollective(t, c, "cread.dat", ranks, func(rank int, g *collective.Group, f *client.File) error {
		var mem, file ioseg.List
		var pos int64
		for b := int64(0); b < 16; b++ {
			off := (b*ranks + int64(rank)) * 128
			file = append(file, ioseg.Segment{Offset: off, Length: 128})
			mem = append(mem, ioseg.Segment{Offset: pos, Length: 128})
			pos += 128
		}
		arena := make([]byte, pos)
		if err := g.ReadAll(rank, f, arena, mem, file); err != nil {
			return err
		}
		results[rank] = arena
		return nil
	})

	for rank := 0; rank < ranks; rank++ {
		for b := int64(0); b < 16; b++ {
			off := (b*int64(ranks) + int64(rank)) * 128
			got := results[rank][b*128 : (b+1)*128]
			if !bytes.Equal(got, image[off:off+128]) {
				t.Fatalf("rank %d block %d mismatch", rank, b)
			}
		}
	}
}

func TestCollectiveFlashPattern(t *testing.T) {
	// The FLASH checkpoint through two-phase I/O: per-rank 8-byte
	// memory fragmentation, contiguous union in file — the pattern
	// collective I/O ultimately won on in ROMIO.
	c := startCluster(t)
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Create("cflash.dat", striping.Config{}); err != nil {
		t.Fatal(err)
	}

	const ranks = 2
	flash := &patterns.Flash{NumRanks: ranks, Blocks: 4, Elems: 4, Guard: 1, Vars: 6}
	runCollective(t, c, "cflash.dat", ranks, func(rank int, g *collective.Group, f *client.File) error {
		mem := patterns.MemList(flash, rank)
		file := patterns.FileList(flash, rank)
		arena := make([]byte, patterns.ArenaSize(flash, rank))
		for i := range arena {
			arena[i] = byte(rank + 1)
		}
		return g.WriteAll(rank, f, arena, mem, file)
	})

	// Every file byte must carry its owner's tag.
	f, err := fs.Open("cflash.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, flash.FileBytes())
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	chunk := flash.TotalBytes(0) / int64(flash.FileRegions(0))
	for i := int64(0); i < int64(len(got)); i++ {
		owner := byte((i/chunk)%ranks) + 1
		if got[i] != owner {
			t.Fatalf("byte %d = %d, want %d", i, got[i], owner)
		}
	}
}

func TestGroupSequentialCollectives(t *testing.T) {
	// Multiple collectives through the same group must not leak state
	// across calls.
	c := startCluster(t)
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Create("seq.dat", striping.Config{}); err != nil {
		t.Fatal(err)
	}
	const ranks = 3
	g := collective.NewGroup(ranks)
	for round := 0; round < 3; round++ {
		round := round
		err := cluster.RunRanks(ranks, func(rank int) error {
			fsr, err := c.Connect()
			if err != nil {
				return err
			}
			defer fsr.Close()
			f, err := fsr.Open("seq.dat")
			if err != nil {
				return err
			}
			data := []byte(fmt.Sprintf("r%dc%d", rank, round))
			mem := ioseg.List{{Offset: 0, Length: int64(len(data))}}
			file := ioseg.List{{Offset: int64(round*ranks+rank) * 4, Length: int64(len(data))}}
			return g.WriteAll(rank, f, data, mem, file)
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	f, err := fs.Open("seq.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9*4)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for rank := 0; rank < ranks; rank++ {
			off := (round*ranks + rank) * 4
			want := fmt.Sprintf("r%dc%d", rank, round)
			if string(got[off:off+4]) != want {
				t.Fatalf("slot %d = %q, want %q", off, got[off:off+4], want)
			}
		}
	}
}

// TestCollectiveSmallSpan exercises the degenerate geometry where the
// global span is smaller than the rank count: the ROMIO-style
// partitioning would hand out zero-length file domains, whose End()
// collides with a neighbour's and can route pieces into a domain that
// makes no forward progress. Ranks beyond the domain count must simply
// aggregate nothing.
func TestCollectiveSmallSpan(t *testing.T) {
	c := startCluster(t)
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Create("tiny.dat", striping.Config{PCount: 4, StripeSize: 64}); err != nil {
		t.Fatal(err)
	}
	// 8 ranks; only ranks 0-2 contribute one byte each, so the global
	// span is 3 bytes — smaller than the group.
	const ranks = 8
	runCollective(t, c, "tiny.dat", ranks, func(rank int, g *collective.Group, f *client.File) error {
		var mem, file ioseg.List
		var arena []byte
		if rank < 3 {
			arena = []byte{byte('a' + rank)}
			mem = ioseg.List{{Offset: 0, Length: 1}}
			file = ioseg.List{{Offset: int64(rank), Length: 1}}
		}
		return g.WriteAll(rank, f, arena, mem, file)
	})
	f, err := fs.Open("tiny.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("small-span collective wrote %q, want %q", got, "abc")
	}

	// Read it back collectively through the same degenerate geometry.
	runCollective(t, c, "tiny.dat", ranks, func(rank int, g *collective.Group, f *client.File) error {
		var mem, file ioseg.List
		var arena []byte
		if rank < 3 {
			arena = make([]byte, 1)
			mem = ioseg.List{{Offset: 0, Length: 1}}
			file = ioseg.List{{Offset: int64(rank), Length: 1}}
		}
		if err := g.ReadAll(rank, f, arena, mem, file); err != nil {
			return err
		}
		if rank < 3 && arena[0] != byte('a'+rank) {
			return fmt.Errorf("rank %d read %q", rank, arena)
		}
		return nil
	})
}

// TestCollectiveSpanEqualsOne: the extreme case, a one-byte global
// span across a multi-rank group.
func TestCollectiveSpanEqualsOne(t *testing.T) {
	c := startCluster(t)
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Create("one.dat", striping.Config{PCount: 4, StripeSize: 64}); err != nil {
		t.Fatal(err)
	}
	const ranks = 4
	runCollective(t, c, "one.dat", ranks, func(rank int, g *collective.Group, f *client.File) error {
		var mem, file ioseg.List
		var arena []byte
		if rank == 2 {
			arena = []byte{'Z'}
			mem = ioseg.List{{Offset: 0, Length: 1}}
			file = ioseg.List{{Offset: 5, Length: 1}}
		}
		return g.WriteAll(rank, f, arena, mem, file)
	})
	f, err := fs.Open("one.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if _, err := f.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'Z' {
		t.Fatalf("byte = %q", got)
	}
}
