// Package collective implements two-phase collective I/O, the
// companion optimization to data sieving in ROMIO (the paper's
// reference [11], Thakur et al., "Data Sieving and Collective I/O in
// ROMIO"). Where list I/O attacks noncontiguity per process, two-phase
// I/O attacks it across processes: ranks exchange data so that each
// aggregator performs one large contiguous file access over its "file
// domain".
//
// The paper's workloads interleave ranks' data at fine grain (FLASH:
// each 4 KiB file chunk belongs to one rank, neighbours to others), so
// per-process accesses are noncontiguous while the union is perfectly
// contiguous — the best case for two-phase I/O and the natural
// extension of the paper's §5 outlook.
//
// The exchange phase substitutes Go channels/shared memory for MPI
// all-to-all (the paper's runs used MPI on Chiba City); the I/O phase
// uses the PVFS client library, falling back to list I/O when a file
// domain's collected pieces do not tile contiguously.
package collective

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/ioseg"
	"pvfs/internal/memio"
)

// Group coordinates a fixed set of ranks performing collective
// operations. All ranks must call each collective in the same order
// (MPI semantics).
type Group struct {
	n       int
	barrier *cluster.Barrier

	mu    sync.Mutex
	calls map[uint64]*callState
	seq   []uint64 // per-rank next call sequence
}

// NewGroup creates a collective group of n ranks.
func NewGroup(n int) *Group {
	if n <= 0 {
		panic("collective: group size must be positive")
	}
	return &Group{
		n:       n,
		barrier: cluster.NewBarrier(n),
		calls:   make(map[uint64]*callState),
		seq:     make([]uint64, n),
	}
}

// piece is one unit of exchanged data.
type piece struct {
	file ioseg.Segment
	data []byte // nil for read requests
	rank int
}

type callState struct {
	mu        sync.Mutex
	spans     []ioseg.Segment // per-rank local spans
	collected [][]piece       // per-aggregator inbound pieces
	responses [][]piece       // per-rank read responses
	errs      []error
}

// state fetches (or creates) the shared state for a rank's next call.
func (g *Group) state(rank int) (*callState, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := g.seq[rank]
	g.seq[rank]++
	st, ok := g.calls[seq]
	if !ok {
		st = &callState{
			spans:     make([]ioseg.Segment, g.n),
			collected: make([][]piece, g.n),
			responses: make([][]piece, g.n),
			errs:      make([]error, g.n),
		}
		g.calls[seq] = st
	}
	return st, seq
}

func (g *Group) release(seq uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.calls, seq)
}

// domains partitions the global span into at most n near-equal
// contiguous file domains (ROMIO's default partitioning). When the
// span is smaller than the rank count the trailing domains would be
// zero-length — a degenerate geometry whose End() collides with its
// neighbour's, so routing a piece to one would make no progress; they
// are dropped, and ranks beyond the returned length simply aggregate
// nothing.
func domains(span ioseg.Segment, n int) []ioseg.Segment {
	out := make([]ioseg.Segment, 0, n)
	chunk := span.Length / int64(n)
	rem := span.Length % int64(n)
	off := span.Offset
	for i := 0; i < n; i++ {
		l := chunk
		if int64(i) < rem {
			l++
		}
		if l == 0 {
			continue
		}
		out = append(out, ioseg.Segment{Offset: off, Length: l})
		off += l
	}
	return out
}

// domainFor locates the aggregator owning a file offset. The domain
// list holds no zero-length entries (see domains), so the returned
// domain always makes positive progress for any offset inside the
// global span; -1 reports an offset no domain covers.
func domainFor(ds []ioseg.Segment, off int64) int {
	// Binary search over domain starts.
	i := sort.Search(len(ds), func(i int) bool { return ds[i].End() > off })
	if i == len(ds) {
		return -1
	}
	return i
}

// globalSpan merges the per-rank spans (after the first barrier).
func globalSpan(spans []ioseg.Segment) ioseg.Segment {
	var out ioseg.Segment
	first := true
	for _, s := range spans {
		if s.Empty() {
			continue
		}
		if first {
			out = s
			first = false
			continue
		}
		lo, hi := out.Offset, out.End()
		if s.Offset < lo {
			lo = s.Offset
		}
		if s.End() > hi {
			hi = s.End()
		}
		out = ioseg.Segment{Offset: lo, Length: hi - lo}
	}
	return out
}

// WriteAll performs a collective noncontiguous write: every rank of
// the group must call it concurrently with its own buffer and region
// lists (MPI_File_write_all). Rank r acts as the aggregator for file
// domain r.
func (g *Group) WriteAll(rank int, f *client.File, arena []byte, mem, file ioseg.List) error {
	st, seq := g.state(rank)

	// Pair memory with file pieces and note the local span.
	pairs, err := memio.Match(mem, file)
	if err != nil {
		return fmt.Errorf("collective: rank %d: %w", rank, err)
	}
	span, _ := file.Span()
	st.spans[rank] = span
	g.barrier.Wait()

	gs := globalSpan(st.spans)
	ds := domains(gs, g.n)

	// Exchange phase: route each piece (splitting at domain
	// boundaries) to its aggregator. A routing failure is recorded
	// rather than returned so the rank still participates in the
	// remaining barriers.
routeWrite:
	for _, pr := range pairs {
		fileSeg, memOff := pr.File, pr.Mem.Offset
		for !fileSeg.Empty() {
			d := domainFor(ds, fileSeg.Offset)
			if d < 0 {
				st.errs[rank] = fmt.Errorf("collective: rank %d: piece %v outside file domains", rank, fileSeg)
				break routeWrite
			}
			take := fileSeg.Length
			if end := ds[d].End(); fileSeg.Offset+take > end {
				take = end - fileSeg.Offset
			}
			p := piece{
				file: ioseg.Segment{Offset: fileSeg.Offset, Length: take},
				data: arena[memOff : memOff+take],
				rank: rank,
			}
			st.mu.Lock()
			st.collected[d] = append(st.collected[d], p)
			st.mu.Unlock()
			fileSeg.Offset += take
			fileSeg.Length -= take
			memOff += take
		}
	}
	g.barrier.Wait()

	// I/O phase: this rank aggregates its domain. Ranks beyond the
	// domain count (span smaller than the group) aggregate nothing.
	if st.errs[rank] == nil && rank < len(ds) {
		st.errs[rank] = g.flushDomain(f, st.collected[rank])
	}
	g.barrier.Wait()

	err = firstError(st.errs)
	g.barrier.Wait() // everyone has read errs; safe to release
	if rank == 0 {
		g.release(seq)
	}
	return err
}

// flushDomain writes the collected pieces of one file domain through
// one unified Request: a single contiguous write when they tile
// exactly, list I/O otherwise.
func (g *Group) flushDomain(f *client.File, pieces []piece) error {
	if len(pieces) == 0 {
		return nil
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].file.Offset < pieces[j].file.Offset })
	// Detect exact tiling (no holes, no overlaps).
	contiguous := true
	for i := 1; i < len(pieces); i++ {
		if pieces[i].file.Offset != pieces[i-1].file.End() {
			contiguous = false
			break
		}
	}
	buf := make([]byte, 0, totalBytes(pieces))
	for _, p := range pieces {
		buf = append(buf, p.data...)
	}
	req := client.Request{
		Write: true,
		Arena: buf,
		Mem:   ioseg.List{{Offset: 0, Length: int64(len(buf))}},
	}
	if contiguous {
		// One doubly-contiguous region: the auto method resolves this
		// to the plain contiguous path (one request per server).
		req.File = ioseg.List{{Offset: pieces[0].file.Offset, Length: int64(len(buf))}}
	} else {
		// Holes: list I/O over the merged pieces.
		fileList := make(ioseg.List, len(pieces))
		for i, p := range pieces {
			fileList[i] = p.file
		}
		req.File = fileList
		req.Method = client.AccessList
	}
	_, err := f.Run(context.Background(), req)
	return err
}

// ReadAll performs a collective noncontiguous read
// (MPI_File_read_all): aggregators read their domains contiguously
// and distribute the pieces back to their owners.
func (g *Group) ReadAll(rank int, f *client.File, arena []byte, mem, file ioseg.List) error {
	st, seq := g.state(rank)

	pairs, err := memio.Match(mem, file)
	if err != nil {
		return fmt.Errorf("collective: rank %d: %w", rank, err)
	}
	span, _ := file.Span()
	st.spans[rank] = span
	g.barrier.Wait()

	gs := globalSpan(st.spans)
	ds := domains(gs, g.n)

	// Request phase: register the pieces this rank needs, split at
	// domain boundaries (data nil marks a request).
	type slot struct {
		file   ioseg.Segment
		memOff int64
	}
	var slots []slot
routeRead:
	for _, pr := range pairs {
		fileSeg, memOff := pr.File, pr.Mem.Offset
		for !fileSeg.Empty() {
			d := domainFor(ds, fileSeg.Offset)
			if d < 0 {
				st.errs[rank] = fmt.Errorf("collective: rank %d: piece %v outside file domains", rank, fileSeg)
				break routeRead
			}
			take := fileSeg.Length
			if end := ds[d].End(); fileSeg.Offset+take > end {
				take = end - fileSeg.Offset
			}
			sl := slot{file: ioseg.Segment{Offset: fileSeg.Offset, Length: take}, memOff: memOff}
			slots = append(slots, sl)
			st.mu.Lock()
			st.collected[d] = append(st.collected[d], piece{file: sl.file, rank: rank})
			st.mu.Unlock()
			fileSeg.Offset += take
			fileSeg.Length -= take
			memOff += take
		}
	}
	g.barrier.Wait()

	// I/O phase: aggregate this rank's domain with one contiguous
	// read covering the requested union, then route responses. Ranks
	// beyond the domain count (span smaller than the group) serve
	// nothing.
	if st.errs[rank] == nil && rank < len(ds) {
		st.errs[rank] = g.serveDomain(f, st, st.collected[rank])
	}
	g.barrier.Wait()

	if err := firstError(st.errs); err != nil {
		g.barrier.Wait()
		if rank == 0 {
			g.release(seq)
		}
		return err
	}

	// Scatter phase: place received pieces into the local arena.
	byOffset := make(map[int64]slot, len(slots))
	for _, sl := range slots {
		byOffset[sl.file.Offset] = sl
	}
	for _, p := range st.responses[rank] {
		sl, ok := byOffset[p.file.Offset]
		if !ok || sl.file.Length != p.file.Length {
			g.barrier.Wait()
			return fmt.Errorf("collective: rank %d: unexpected response piece %v", rank, p.file)
		}
		copy(arena[sl.memOff:sl.memOff+p.file.Length], p.data)
	}
	g.barrier.Wait()
	if rank == 0 {
		g.release(seq)
	}
	return nil
}

// serveDomain reads the union of requested pieces in one contiguous
// access (plus extraction) and queues responses to the owners.
func (g *Group) serveDomain(f *client.File, st *callState, requests []piece) error {
	if len(requests) == 0 {
		return nil
	}
	sort.Slice(requests, func(i, j int) bool { return requests[i].file.Offset < requests[j].file.Offset })
	lo := requests[0].file.Offset
	hi := lo
	for _, r := range requests {
		if e := r.file.End(); e > hi {
			hi = e
		}
	}
	buf := make([]byte, hi-lo)
	if _, err := f.ReadAt(buf, lo); err != nil {
		return err
	}
	for _, r := range requests {
		data := make([]byte, r.file.Length)
		copy(data, buf[r.file.Offset-lo:r.file.End()-lo])
		st.mu.Lock()
		st.responses[r.rank] = append(st.responses[r.rank], piece{file: r.file, data: data})
		st.mu.Unlock()
	}
	return nil
}

func totalBytes(ps []piece) int64 {
	var n int64
	for _, p := range ps {
		n += p.file.Length
	}
	return n
}

func firstError(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
