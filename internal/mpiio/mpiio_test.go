package mpiio_test

import (
	"bytes"
	"math/rand"
	"testing"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/datatype"
	"pvfs/internal/mpiio"
	"pvfs/internal/striping"
)

func newFile(t *testing.T, hints mpiio.Hints) (*cluster.Cluster, *client.FS, *mpiio.File) {
	t.Helper()
	c, err := cluster.Start(cluster.Options{NumIOD: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	f, err := fs.Create("view.dat", striping.Config{PCount: 4, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	return c, fs, mpiio.Open(f, hints)
}

func TestDefaultViewIsLinear(t *testing.T) {
	_, _, m := newFile(t, mpiio.Hints{Method: client.MethodList})
	data := []byte("linear bytes through the default view")
	if err := m.WriteAtEtype(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.ReadAtEtype(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// Etype offsets are bytes in the default view.
	tail := make([]byte, 5)
	if err := m.ReadAtEtype(tail, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, data[7:12]) {
		t.Fatalf("tail = %q", tail)
	}
}

func TestVectorViewInterleavesRanks(t *testing.T) {
	// The 1-D cyclic pattern as MPI views: rank r sees every 4th
	// block of 64 bytes starting at block r. Two "ranks" write
	// through their views; the underlying file must interleave.
	_, fs, _ := newFile(t, mpiio.Hints{})
	const (
		blockLen = 64
		ranks    = 4
		blocks   = 8
	)
	for r := 0; r < ranks; r++ {
		f, err := fs.Open("view.dat")
		if err != nil {
			t.Fatal(err)
		}
		m := mpiio.Open(f, mpiio.Hints{Method: client.MethodList})
		ftype := datatype.Vector(blocks, blockLen, ranks*blockLen, datatype.Bytes(1))
		if err := m.SetView(int64(r*blockLen), datatype.Bytes(1), ftype); err != nil {
			t.Fatal(err)
		}
		buf := bytes.Repeat([]byte{byte('A' + r)}, blocks*blockLen)
		if err := m.WriteAtEtype(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Verify the interleave with a plain contiguous read.
	f, err := fs.Open("view.dat")
	if err != nil {
		t.Fatal(err)
	}
	whole := make([]byte, ranks*blocks*blockLen)
	if _, err := f.ReadAt(whole, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range whole {
		want := byte('A' + (i/blockLen)%ranks)
		if b != want {
			t.Fatalf("byte %d = %c, want %c", i, b, want)
		}
	}
}

func TestViewOffsetsCrossTiles(t *testing.T) {
	// Reading at an etype offset that starts mid-tile and spans
	// several filetype tiles.
	_, fs, _ := newFile(t, mpiio.Hints{})
	f, err := fs.Open("view.dat")
	if err != nil {
		t.Fatal(err)
	}
	// Underlying file: 0..2047 patterned.
	raw := make([]byte, 2048)
	for i := range raw {
		raw[i] = byte(i % 251)
	}
	if _, err := f.WriteAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	m := mpiio.Open(f, mpiio.Hints{Method: client.MethodList})
	// View: 16-byte doubles... etype 8, filetype = vector of 2 blocks
	// of 1 etype every 4 etypes (data 16 B per 32 B extent).
	ft := datatype.Vector(2, 1, 4, datatype.Bytes(8))
	if err := m.SetView(100, datatype.Bytes(8), ft); err != nil {
		t.Fatal(err)
	}
	// View data space: tile k holds file bytes [100+32k,100+32k+8) and
	// [100+32k+32... wait: vector(2,1,4) of 8-byte elems: blocks at
	// elem 0 and elem 4 → file offsets 0 and 32, extent 40.
	// Read 6 etypes (48 bytes) starting at etype 1.
	got := make([]byte, 48)
	if err := m.ReadAtEtype(got, 1); err != nil {
		t.Fatal(err)
	}
	// Expected: walk the view mapping by hand.
	tileExtent := ft.Extent()
	dataPerTile := ft.Size()
	var want []byte
	for e := int64(1); e < 7; e++ {
		tile := e * 8 / dataPerTile
		inTile := e * 8 % dataPerTile
		var fileOff int64
		if inTile < 8 {
			fileOff = 100 + tile*tileExtent + inTile
		} else {
			fileOff = 100 + tile*tileExtent + 32 + (inTile - 8)
		}
		want = append(want, raw[fileOff:fileOff+8]...)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cross-tile read mismatch\ngot  % x\nwant % x", got[:16], want[:16])
	}
}

func TestHintsSelectMethod(t *testing.T) {
	// The same access via the three hint settings must produce
	// identical data but different request profiles.
	_, fs, m := newFile(t, mpiio.Hints{Method: client.MethodList})
	ft := datatype.Vector(128, 16, 64, datatype.Bytes(1))
	if err := m.SetView(0, datatype.Bytes(1), ft); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, ft.Size())
	rand.New(rand.NewSource(2)).Read(data)
	if err := m.WriteAtEtype(data, 0); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		hints mpiio.Hints
		// maxRequests bounds the expected request count.
		maxRequests int64
	}{
		{"list", mpiio.Hints{Method: client.MethodList}, 16},
		{"sieve", mpiio.Hints{Method: client.MethodSieve, SieveBufferBytes: 1 << 20}, 8},
		{"multiple", mpiio.Hints{Method: client.MethodMultiple}, 256},
		{"hybrid", mpiio.Hints{CoalesceGapBytes: 64}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f2, err := fs.Open("view.dat")
			if err != nil {
				t.Fatal(err)
			}
			mm := mpiio.Open(f2, tc.hints)
			if err := mm.SetView(0, datatype.Bytes(1), ft); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, ft.Size())
			before := fs.Counters().Snapshot()
			if err := mm.ReadAtEtype(got, 0); err != nil {
				t.Fatal(err)
			}
			after := fs.Counters().Snapshot()
			if !bytes.Equal(got, data) {
				t.Fatal("data mismatch")
			}
			if got := after.Requests - before.Requests; got > tc.maxRequests {
				t.Fatalf("requests = %d, want <= %d", got, tc.maxRequests)
			}
		})
	}
}

func TestSequentialViewIO(t *testing.T) {
	_, _, m := newFile(t, mpiio.Hints{Method: client.MethodList})
	ft := datatype.Vector(4, 8, 16, datatype.Bytes(1)) // 32 data bytes per 56-byte extent
	if err := m.SetView(8, datatype.Bytes(8), ft); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i)}, 16)
		if err := m.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SeekEtype(0); err != nil {
		t.Fatal(err)
	}
	all := make([]byte, 64)
	if err := m.Read(all); err != nil {
		t.Fatal(err)
	}
	want := bytes.Join([][]byte{
		bytes.Repeat([]byte{'a'}, 16), bytes.Repeat([]byte{'b'}, 16),
		bytes.Repeat([]byte{'c'}, 16), bytes.Repeat([]byte{'d'}, 16),
	}, nil)
	if !bytes.Equal(all, want) {
		t.Fatalf("sequential view read mismatch: %q", all)
	}
}

func TestSetViewValidation(t *testing.T) {
	_, _, m := newFile(t, mpiio.Hints{})
	if err := m.SetView(-1, datatype.Bytes(1), datatype.Bytes(1)); err == nil {
		t.Error("negative disp accepted")
	}
	if err := m.SetView(0, datatype.Bytes(8), datatype.Bytes(12)); err == nil {
		t.Error("filetype not multiple of etype accepted")
	}
	if err := m.SetView(0, datatype.Bytes(0), datatype.Bytes(8)); err == nil {
		t.Error("zero-size etype accepted")
	}
	if err := m.SetView(0, nil, datatype.Bytes(8)); err == nil {
		t.Error("nil etype accepted")
	}
	// Buffer not a whole number of etypes.
	if err := m.SetView(0, datatype.Bytes(8), datatype.Bytes(8)); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadAtEtype(make([]byte, 12), 0); err == nil {
		t.Error("fractional etype buffer accepted")
	}
}

func TestFlashAsView(t *testing.T) {
	// The FLASH file layout for one rank expressed as a view:
	// filetype = one 4 KiB chunk every ranks*4 KiB.
	_, fs, _ := newFile(t, mpiio.Hints{})
	const ranks = 2
	chunk := int64(512) // scaled-down chunk
	for r := 0; r < ranks; r++ {
		f, err := fs.Open("view.dat")
		if err != nil {
			t.Fatal(err)
		}
		m := mpiio.Open(f, mpiio.Hints{Method: client.MethodList})
		ft := datatype.HVector(6, chunk, ranks*chunk, datatype.Bytes(1))
		if err := m.SetView(int64(r)*chunk, datatype.Bytes(1), ft); err != nil {
			t.Fatal(err)
		}
		buf := bytes.Repeat([]byte{byte('0' + r)}, int(6*chunk))
		if err := m.WriteAtEtype(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.Open("view.dat")
	if err != nil {
		t.Fatal(err)
	}
	whole := make([]byte, ranks*6*chunk)
	if _, err := f.ReadAt(whole, 0); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < int64(len(whole)); i++ {
		want := byte('0' + (i/chunk)%ranks)
		if whole[i] != want {
			t.Fatalf("byte %d = %c, want %c", i, whole[i], want)
		}
	}
}

// TestDatatypeRouting pins the selection function of the datatype
// path (DESIGN.md §6): whole-tile accesses under plain list hints
// ship the view type itself (Datatype path counters move, List stays
// flat); unaligned accesses and NoDatatype fall back to list I/O; and
// both routes produce identical bytes.
func TestDatatypeRouting(t *testing.T) {
	_, fs, m := newFile(t, mpiio.Hints{Method: client.MethodList})
	// Rank-0 view of a 4-rank cyclic pattern: eight 64-byte blocks,
	// one per 256-byte stripe cycle, as a single filetype tile.
	filetype := datatype.Vector(8, 64, 256, datatype.Bytes(1))
	if err := m.SetView(0, datatype.Bytes(1), filetype); err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 8*64) // exactly one tile of view data
	rand.New(rand.NewSource(21)).Read(data)

	before := fs.Counters().Snapshot()
	if err := m.WriteAtEtype(data, 0); err != nil {
		t.Fatal(err)
	}
	d := fs.Counters().Snapshot().Sub(before)
	if d.Datatype.Requests == 0 {
		t.Fatalf("whole-tile write did not take the datatype path: %+v", d)
	}
	if d.List.Requests != 0 {
		t.Fatalf("whole-tile write also used list I/O: %+v", d.List)
	}

	// Read back through the datatype route and verify.
	got := make([]byte, len(data))
	if err := m.ReadAtEtype(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datatype-routed read-back differs")
	}

	// An access that does not cover whole tiles falls back to list I/O.
	before = fs.Counters().Snapshot()
	part := make([]byte, 32)
	if err := m.ReadAtEtype(part, 16); err != nil {
		t.Fatal(err)
	}
	d = fs.Counters().Snapshot().Sub(before)
	if d.Datatype.Requests != 0 || d.List.Requests == 0 {
		t.Fatalf("partial-tile access routing: %+v", d)
	}
	if !bytes.Equal(part, data[16:48]) {
		t.Fatal("fallback read-back differs")
	}

	// NoDatatype forces the flattened path even for whole tiles, and
	// the results stay identical.
	f2, err := fs.Create("view-nodt.dat", striping.Config{PCount: 4, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	m2 := mpiio.Open(f2, mpiio.Hints{Method: client.MethodList, NoDatatype: true})
	if err := m2.SetView(0, datatype.Bytes(1), filetype); err != nil {
		t.Fatal(err)
	}
	before = fs.Counters().Snapshot()
	if err := m2.WriteAtEtype(data, 0); err != nil {
		t.Fatal(err)
	}
	d = fs.Counters().Snapshot().Sub(before)
	if d.Datatype.Requests != 0 || d.List.Requests == 0 {
		t.Fatalf("NoDatatype routing: %+v", d)
	}
	got2 := make([]byte, len(data))
	if err := m2.ReadAtEtype(got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("NoDatatype read-back differs")
	}
}
