// Package mpiio provides an MPI-IO (ROMIO)-style layer over the PVFS
// client: file views described by derived datatypes, with hints
// selecting how noncontiguous accesses reach the file system.
//
// The paper positions list I/O exactly here (§1, §3): "MPI-IO allows
// users to describe noncontiguous data access patterns but is limited
// in its ability to improve application performance if support for
// noncontiguous access is not present at the file system level." This
// package is that upper layer: applications set a view (displacement,
// etype, filetype) and read/write linear buffers; the layer converts
// view offsets into file region lists and dispatches them via list
// I/O, data sieving, or one-request-per-piece multiple I/O according
// to hints — the ROMIO knobs the paper's evaluation compares.
package mpiio

import (
	"context"
	"errors"
	"fmt"

	"pvfs/internal/client"
	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
)

// Hints mirrors the ROMIO info keys relevant to the paper.
type Hints struct {
	// Method selects the noncontiguous strategy: list I/O (default),
	// data sieving (romio_ds_read/write enable), or multiple I/O
	// (both disabled).
	Method client.Method
	// SieveBufferBytes is ROMIO's ind_rd_buffer_size analog
	// (0 = the paper's 32 MB).
	SieveBufferBytes int64
	// CoalesceGapBytes, when positive, applies the hybrid list+sieve
	// coalescing before dispatch (§5 future work).
	CoalesceGapBytes int64
	// NoDatatype disables the datatype fast path: accesses that cover
	// whole filetype tiles normally ship the view type itself to the
	// I/O daemons (DESIGN.md §6) instead of flattening to region
	// lists. Set it to force the flattened methods, e.g. to compare
	// paths.
	NoDatatype bool
	// DatatypeOptions tunes the datatype path when it is taken.
	DatatypeOptions client.DatatypeOptions
}

// File is an open file with an MPI-IO view.
type File struct {
	f     *client.File
	hints Hints

	disp     int64
	etype    datatype.Type
	filetype datatype.Type

	// template is the flattened filetype at offset 0; tileData and
	// tileExtent are its data size and extent.
	template   ioseg.List
	tileData   int64
	tileExtent int64

	cursor int64 // sequential position, in bytes of view data space
}

// Open wraps an already-open PVFS file with the default view
// (etype = filetype = bytes: the file is a linear byte stream).
func Open(f *client.File, hints Hints) *File {
	m := &File{f: f, hints: hints}
	// Default view: contiguous bytes.
	m.mustSetView(0, datatype.Bytes(1), datatype.Bytes(1))
	return m
}

func (m *File) mustSetView(disp int64, etype, filetype datatype.Type) {
	if err := m.SetView(disp, etype, filetype); err != nil {
		panic(err)
	}
}

// SetView installs a view: file data visible to this process starts
// at byte disp and is tiled by filetype repeated end to end; etype is
// the element unit (offsets are expressed in etypes, as in MPI).
func (m *File) SetView(disp int64, etype, filetype datatype.Type) error {
	if disp < 0 {
		return errors.New("mpiio: negative displacement")
	}
	if etype == nil || filetype == nil {
		return errors.New("mpiio: nil type")
	}
	es, fs := etype.Size(), filetype.Size()
	if es <= 0 || fs <= 0 {
		return errors.New("mpiio: zero-size type in view")
	}
	if fs%es != 0 {
		return fmt.Errorf("mpiio: filetype size %d not a multiple of etype size %d", fs, es)
	}
	m.disp = disp
	m.etype = etype
	m.filetype = filetype
	m.template = datatype.Flatten(filetype, 0)
	m.tileData = fs
	m.tileExtent = filetype.Extent()
	m.cursor = 0
	return nil
}

// View returns the current (disp, etype, filetype).
func (m *File) View() (int64, datatype.Type, datatype.Type) {
	return m.disp, m.etype, m.filetype
}

// regionsFor maps [dataOff, dataOff+n) bytes of view data space to
// absolute file regions, in stream order.
func (m *File) regionsFor(dataOff, n int64) (ioseg.List, error) {
	if dataOff < 0 || n < 0 {
		return nil, errors.New("mpiio: negative view range")
	}
	if n == 0 {
		return nil, nil
	}
	var out ioseg.List
	tile := dataOff / m.tileData
	remaining := n
	pos := dataOff
	for remaining > 0 {
		tileStart := tile * m.tileData
		base := m.disp + tile*m.tileExtent
		stream := tileStart
		for _, r := range m.template {
			if remaining == 0 {
				break
			}
			// r covers data space [stream, stream+r.Length).
			lo, hi := stream, stream+r.Length
			if hi <= pos {
				stream = hi
				continue
			}
			start := pos - lo
			take := r.Length - start
			if take > remaining {
				take = remaining
			}
			out = append(out, ioseg.Segment{Offset: base + r.Offset + start, Length: take})
			pos += take
			remaining -= take
			stream = hi
		}
		tile++
	}
	// Merge regions that happen to touch (dense filetypes).
	merged := out[:0]
	for _, s := range out {
		if k := len(merged); k > 0 && merged[k-1].End() == s.Offset {
			merged[k-1].Length += s.Length
			continue
		}
		merged = append(merged, s)
	}
	return merged, nil
}

// datatypePattern reports whether the view access [dataOff,
// dataOff+n) is expressible as a wire datatype pattern: it must cover
// whole filetype tiles (the repetition unit the daemons evaluate) and
// the filetype must survive the wire codec's limits. This is the
// selection function of the datatype routing — expressible accesses
// ship the view type itself; everything else falls back to the
// flattened region-list methods.
func (m *File) datatypePattern(dataOff, n int64) (t datatype.Type, base, count int64, ok bool) {
	if n <= 0 || dataOff%m.tileData != 0 || n%m.tileData != 0 {
		return nil, 0, 0, false
	}
	if datatype.CanEncode(m.filetype) != nil {
		return nil, 0, 0, false
	}
	tile := dataOff / m.tileData
	return m.filetype, m.disp + tile*m.tileExtent, n / m.tileData, true
}

// dispatchView runs one view transfer of [dataOff, dataOff+n) bytes
// of view data space by building the unified client.Request for it and
// running it through File.Start. Expressible accesses take the
// datatype path — the view type crosses the wire un-flattened, so
// neither the client nor the request stream ever holds the region list
// — when the hints select plain list I/O; otherwise (or on fallback)
// the access is flattened through regionsFor and dispatched to the
// hinted method.
func (m *File) dispatchView(buf []byte, dataOff, n int64, write bool) error {
	req, err := m.viewRequest(buf, dataOff, n, write)
	if err != nil {
		return err
	}
	_, err = m.f.Run(context.Background(), req)
	return err
}

// viewRequest translates a view access into the unified descriptor.
func (m *File) viewRequest(buf []byte, dataOff, n int64, write bool) (client.Request, error) {
	req := client.Request{
		Write: write,
		Arena: buf,
		Mem:   ioseg.List{{Offset: 0, Length: n}},
	}
	if !m.hints.NoDatatype && m.hints.Method == client.MethodList && m.hints.CoalesceGapBytes == 0 {
		if t, base, count, ok := m.datatypePattern(dataOff, n); ok {
			req.Type, req.Base, req.Count = t, base, count
			req.Method = client.AccessDatatype
			req.Datatype = m.hints.DatatypeOptions
			return req, nil
		}
	}
	file, err := m.regionsFor(dataOff, n)
	if err != nil {
		return client.Request{}, err
	}
	if file == nil {
		file = ioseg.List{} // empty transfer: a present-but-empty layout
	}
	req.File = file
	req.Mem = ioseg.List{{Offset: 0, Length: int64(len(buf))}}
	if m.hints.CoalesceGapBytes > 0 {
		req.Method = client.AccessHybrid
		req.CoalesceGap = m.hints.CoalesceGapBytes
		return req, nil
	}
	switch m.hints.Method {
	case client.MethodMultiple:
		req.Method = client.AccessMultiple
	case client.MethodSieve:
		req.Method = client.AccessSieve
		req.Sieve = client.SieveOptions{BufferSize: m.hints.SieveBufferBytes}
	case client.MethodList:
		req.Method = client.AccessList
	default:
		return client.Request{}, fmt.Errorf("mpiio: unknown method %v", m.hints.Method)
	}
	return req, nil
}

// ReadAtEtype reads len(buf) bytes at an offset given in etypes of
// view data space (MPI_File_read_at).
func (m *File) ReadAtEtype(buf []byte, etypeOff int64) error {
	if int64(len(buf))%m.etype.Size() != 0 {
		return fmt.Errorf("mpiio: buffer %d bytes is not whole etypes of %d", len(buf), m.etype.Size())
	}
	return m.dispatchView(buf, etypeOff*m.etype.Size(), int64(len(buf)), false)
}

// WriteAtEtype writes len(buf) bytes at an etype offset
// (MPI_File_write_at).
func (m *File) WriteAtEtype(buf []byte, etypeOff int64) error {
	if int64(len(buf))%m.etype.Size() != 0 {
		return fmt.Errorf("mpiio: buffer %d bytes is not whole etypes of %d", len(buf), m.etype.Size())
	}
	return m.dispatchView(buf, etypeOff*m.etype.Size(), int64(len(buf)), true)
}

// Read reads sequentially at the view cursor (MPI_File_read).
func (m *File) Read(buf []byte) error {
	if err := m.dispatchView(buf, m.cursor, int64(len(buf)), false); err != nil {
		return err
	}
	m.cursor += int64(len(buf))
	return nil
}

// Write writes sequentially at the view cursor (MPI_File_write).
func (m *File) Write(buf []byte) error {
	if err := m.dispatchView(buf, m.cursor, int64(len(buf)), true); err != nil {
		return err
	}
	m.cursor += int64(len(buf))
	return nil
}

// SeekEtype positions the cursor at an etype offset in view space.
func (m *File) SeekEtype(etypeOff int64) error {
	if etypeOff < 0 {
		return errors.New("mpiio: negative seek")
	}
	m.cursor = etypeOff * m.etype.Size()
	return nil
}

// Underlying exposes the wrapped PVFS file.
func (m *File) Underlying() *client.File { return m.f }
