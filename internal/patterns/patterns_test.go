package patterns

import (
	"testing"

	"pvfs/internal/ioseg"
)

// checkDisjointCover verifies ranks' file regions never overlap and
// jointly cover a contiguous prefix-free byte set of the given total.
func checkDisjointCover(t *testing.T, p Pattern, wantTotal int64) {
	t.Helper()
	var all ioseg.List
	var total int64
	for r := 0; r < p.Ranks(); r++ {
		l := FileList(p, r)
		if n := p.FileRegions(r); n != len(l) {
			t.Fatalf("rank %d: FileRegions=%d but list has %d", r, n, len(l))
		}
		if got := l.TotalLength(); got != p.TotalBytes(r) {
			t.Fatalf("rank %d: TotalBytes=%d, list covers %d", r, p.TotalBytes(r), got)
		}
		total += l.TotalLength()
		all = append(all, l...)
	}
	norm := all.Normalize()
	if norm.TotalLength() != total {
		t.Fatalf("%s: ranks overlap: union %d < sum %d", p.Name(), norm.TotalLength(), total)
	}
	if wantTotal > 0 && total != wantTotal {
		t.Fatalf("%s: total = %d, want %d", p.Name(), total, wantTotal)
	}
}

func TestCyclic1DGeometry(t *testing.T) {
	p, err := NewCyclic1D(8, 1000, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if bs := p.BlockSize(); bs != (1<<30)/8000 {
		t.Fatalf("block size = %d", bs)
	}
	// Rank r's i-th region interleaves.
	s := p.FileRegion(3, 0)
	if s.Offset != 3*p.BlockSize() {
		t.Fatalf("rank 3 region 0 at %d", s.Offset)
	}
	s = p.FileRegion(0, 1)
	if s.Offset != 8*p.BlockSize() {
		t.Fatalf("rank 0 region 1 at %d", s.Offset)
	}
	checkDisjointCover(t, p, int64(8*1000)*p.BlockSize())
}

func TestCyclic1DPaperArithmetic(t *testing.T) {
	// §4.2.2: 9 clients, 800,000 accesses on 1 GiB ≈ 149 bytes/access.
	p, err := NewCyclic1D(9, 800000, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if bs := p.BlockSize(); bs != 149 {
		t.Fatalf("block size = %d, want 149 (paper's turning point)", bs)
	}
}

func TestCyclic1DValidation(t *testing.T) {
	if _, err := NewCyclic1D(0, 10, 100); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := NewCyclic1D(4, 1000, 100); err == nil {
		t.Fatal("more accesses than bytes accepted")
	}
}

func TestBlockBlockGeometry(t *testing.T) {
	p, err := NewBlockBlock(4, 4096, 1<<20) // 1 MiB array, edge 1024
	if err != nil {
		t.Fatal(err)
	}
	if p.Grid != 2 || p.N != 1024 {
		t.Fatalf("grid=%d n=%d", p.Grid, p.N)
	}
	// 4096 accesses over 512 tile rows = 8 pieces/row.
	if p.PerRow != 8 {
		t.Fatalf("PerRow = %d, want 8", p.PerRow)
	}
	checkDisjointCover(t, p, 1024*1024)

	// Rank 3 (bottom-right tile) first region starts at row 512, col 512.
	s := p.FileRegion(3, 0)
	if s.Offset != 512*1024+512 {
		t.Fatalf("rank 3 region 0 at %d", s.Offset)
	}
}

func TestBlockBlockNonSquareRejected(t *testing.T) {
	if _, err := NewBlockBlock(6, 100, 1<<20); err == nil {
		t.Fatal("non-square rank count accepted")
	}
}

func TestBlockBlockRemainderAbsorbed(t *testing.T) {
	// 9 ranks on an edge not divisible by 3: the last row/col tiles
	// absorb the remainder and coverage stays exact.
	p, err := NewBlockBlock(9, 1000, 1000*1000)
	if err != nil {
		t.Fatal(err)
	}
	checkDisjointCover(t, p, 1000*1000)
}

func TestBlockBlockServersPerRow(t *testing.T) {
	// Paper setup: N = 32768 bytes/row, 16 KiB stripes, 8 servers:
	// rows advance 2 stripe slots → only 4 distinct servers per client.
	p := &BlockBlock{NumRanks: 9, Grid: 3, N: 32768, PerRow: 1}
	if got := p.ServersPerRow(16384, 8); got != 4 {
		t.Fatalf("ServersPerRow = %d, want 4", got)
	}
	// 1-D cyclic-like advance of 1 slot touches all 8.
	p2 := &BlockBlock{NumRanks: 4, Grid: 2, N: 16384, PerRow: 1}
	if got := p2.ServersPerRow(16384, 8); got != 8 {
		t.Fatalf("ServersPerRow = %d, want 8", got)
	}
}

func TestFlashPaperArithmetic(t *testing.T) {
	// §4.3.1's request arithmetic.
	p := DefaultFlash(4)
	if got := p.MemPieces(0); got != 983040 {
		t.Fatalf("mem pieces = %d, want 983040", got)
	}
	if got := p.FileRegions(0); got != 1920 {
		t.Fatalf("file regions = %d, want 1920 (80 blocks x 24 vars)", got)
	}
	if got := p.chunkBytes(); got != 4096 {
		t.Fatalf("chunk = %d, want 4096", got)
	}
	if got := p.TotalBytes(0); got != 7864320 {
		t.Fatalf("bytes/rank = %d, want 7,864,320", got)
	}
	if got := p.FileBytes(); got != 4*7864320 {
		t.Fatalf("file bytes = %d", got)
	}
}

func TestFlashFileLayout(t *testing.T) {
	p := DefaultFlash(2)
	// Variable 0, block 0: rank 0 then rank 1, 4096 bytes each.
	if s := p.FileRegion(0, 0); s.Offset != 0 || s.Length != 4096 {
		t.Fatalf("rank 0 region 0 = %v", s)
	}
	if s := p.FileRegion(1, 0); s.Offset != 4096 {
		t.Fatalf("rank 1 region 0 = %v", s)
	}
	// Rank 0, region 1 = (v=0, b=1): offset 2*4096.
	if s := p.FileRegion(0, 1); s.Offset != 2*4096 {
		t.Fatalf("rank 0 region 1 = %v", s)
	}
	checkDisjointCover(t, p, p.FileBytes())
}

func TestFlashMemoryLayout(t *testing.T) {
	p := &Flash{NumRanks: 1, Blocks: 2, Elems: 2, Guard: 1, Vars: 3}
	// Edge = 4, cube = 64 elements; arena = 2*64*3*8 = 3072.
	if got := p.ArenaBytes(0); got != 3072 {
		t.Fatalf("arena = %d", got)
	}
	// Stream piece 0: v=0,b=0,z=0,y=0,x=0 → element (1,1,1) in the
	// padded cube: idx = (1*4+1)*4+1 = 21 → offset (21*3+0)*8 = 504.
	if s := p.MemRegion(0, 0); s.Offset != 504 || s.Length != 8 {
		t.Fatalf("piece 0 = %v", s)
	}
	// Next x: element (1,1,2): idx 22 → offset 528.
	if s := p.MemRegion(0, 1); s.Offset != 528 {
		t.Fatalf("piece 1 = %v", s)
	}
	// All pieces must be distinct, 8 bytes, inside the arena.
	seen := map[int64]bool{}
	mp := p.MemPieces(0)
	if mp != 2*8*3 {
		t.Fatalf("mem pieces = %d", mp)
	}
	for i := 0; i < mp; i++ {
		s := p.MemRegion(0, i)
		if s.Length != 8 || s.Offset < 0 || s.End() > p.ArenaBytes(0) {
			t.Fatalf("piece %d = %v outside arena", i, s)
		}
		if seen[s.Offset] {
			t.Fatalf("piece %d reuses offset %d", i, s.Offset)
		}
		seen[s.Offset] = true
	}
}

func TestFlashMemFileTotalsAgree(t *testing.T) {
	p := &Flash{NumRanks: 3, Blocks: 4, Elems: 4, Guard: 1, Vars: 5}
	for r := 0; r < 3; r++ {
		mem := MemList(p, r)
		file := FileList(p, r)
		if mem.TotalLength() != file.TotalLength() {
			t.Fatalf("rank %d: mem %d != file %d bytes", r, mem.TotalLength(), file.TotalLength())
		}
		if len(mem) != p.MemPieces(r) {
			t.Fatalf("rank %d: mem list %d pieces, want %d", r, len(mem), p.MemPieces(r))
		}
	}
	checkDisjointCover(t, p, p.FileBytes())
}

func TestTiledPaperGeometry(t *testing.T) {
	p := DefaultTiled()
	if p.frameW() != 2532 || p.frameH() != 1408 {
		t.Fatalf("frame = %dx%d, want 2532x1408", p.frameW(), p.frameH())
	}
	if got := p.FileBytes(); got != 10695168 {
		t.Fatalf("file bytes = %d, want 10,695,168 (~10.2 MB)", got)
	}
	if got := p.FileRegions(0); got != 768 {
		t.Fatalf("regions = %d, want 768", got)
	}
	if got := p.FileRegion(0, 0); got.Length != 3072 {
		t.Fatalf("row length = %d, want 3072", got.Length)
	}
	if got := p.TotalBytes(0); got != 1024*768*3 {
		t.Fatalf("tile bytes = %d", got)
	}
	if uf := p.UsefulFraction(); uf < 0.33 || uf > 0.34 {
		t.Fatalf("useful fraction = %f, want ~1/3", uf)
	}
}

func TestTiledOverlapMeansSharedBytes(t *testing.T) {
	// Unlike the other patterns, tiles overlap: adjacent tiles read
	// shared columns. Verify rank 0 and rank 1 rows overlap by
	// exactly OverlapX pixels.
	p := DefaultTiled()
	r0 := p.FileRegion(0, 0)
	r1 := p.FileRegion(1, 0)
	inter, ok := r0.Intersect(r1)
	if !ok {
		t.Fatal("adjacent tiles do not overlap")
	}
	if want := int64(p.OverlapX * p.Bpp); inter.Length != want {
		t.Fatalf("overlap = %d bytes, want %d", inter.Length, want)
	}
}

func TestTiledRegionsInsideFile(t *testing.T) {
	p := DefaultTiled()
	for r := 0; r < p.Ranks(); r++ {
		l := FileList(p, r)
		span, _ := l.Span()
		if span.End() > p.FileBytes() {
			t.Fatalf("rank %d regions end at %d past file %d", r, span.End(), p.FileBytes())
		}
	}
}

func TestMemListContiguousDefault(t *testing.T) {
	p, _ := NewCyclic1D(2, 10, 1000)
	mem := MemList(p, 0)
	if len(mem) != 1 || mem[0].Length != p.TotalBytes(0) {
		t.Fatalf("mem list = %v", mem)
	}
	if ArenaSize(p, 0) != p.TotalBytes(0) {
		t.Fatalf("arena = %d", ArenaSize(p, 0))
	}
}
