package patterns

import (
	"testing"
	"testing/quick"

	"pvfs/internal/ioseg"
)

func defaultRandomOpts() RandomOptions {
	return RandomOptions{RegionsPerRank: 64, MinSize: 1, MaxSize: 512, MaxGap: 1024}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := NewRandom(4, 99, defaultRandomOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandom(4, 99, defaultRandomOpts())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if !FileList(a, r).Equal(FileList(b, r)) {
			t.Fatalf("rank %d differs across same-seed constructions", r)
		}
	}
	c, err := NewRandom(4, 100, defaultRandomOpts())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < 4; r++ {
		if !FileList(a, r).Equal(FileList(c, r)) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
}

// TestRandomDisjointAndSorted: the property every method relies on —
// regions never overlap across ranks, and each rank's list is sorted.
func TestRandomDisjointAndSorted(t *testing.T) {
	f := func(seed int64, ranks8, regions8 uint8) bool {
		ranks := 1 + int(ranks8)%8
		opts := RandomOptions{
			RegionsPerRank: 1 + int(regions8)%100,
			MinSize:        1, MaxSize: 300, MaxGap: 64,
		}
		p, err := NewRandom(ranks, seed, opts)
		if err != nil {
			return false
		}
		var all ioseg.List
		for r := 0; r < ranks; r++ {
			l := FileList(p, r)
			if len(l) != opts.RegionsPerRank {
				return false
			}
			if !l.IsSorted() {
				return false
			}
			if l.TotalLength() != p.TotalBytes(r) {
				return false
			}
			all = append(all, l...)
		}
		// Disjointness: normalized union preserves total length.
		total := all.TotalLength()
		return all.Normalize().TotalLength() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomSizeBounds(t *testing.T) {
	opts := RandomOptions{RegionsPerRank: 200, MinSize: 7, MaxSize: 9, MaxGap: 3}
	p, err := NewRandom(3, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for i := 0; i < p.FileRegions(r); i++ {
			s := p.FileRegion(r, i)
			if s.Length < 7 || s.Length > 9 {
				t.Fatalf("region length %d outside [7,9]", s.Length)
			}
		}
	}
	if p.FileBytes() <= 0 {
		t.Fatal("FileBytes not positive")
	}
}

func TestRandomRejectsBadOptions(t *testing.T) {
	cases := []struct {
		ranks int
		opts  RandomOptions
	}{
		{0, defaultRandomOpts()},
		{2, RandomOptions{RegionsPerRank: 0, MinSize: 1, MaxSize: 2}},
		{2, RandomOptions{RegionsPerRank: 4, MinSize: 0, MaxSize: 2}},
		{2, RandomOptions{RegionsPerRank: 4, MinSize: 3, MaxSize: 2}},
		{2, RandomOptions{RegionsPerRank: 4, MinSize: 1, MaxSize: 2, MaxGap: -1}},
	}
	for i, c := range cases {
		if _, err := NewRandom(c.ranks, 1, c.opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestRandomMemIsContiguous(t *testing.T) {
	p, err := NewRandom(2, 11, defaultRandomOpts())
	if err != nil {
		t.Fatal(err)
	}
	mem := MemList(p, 0)
	if len(mem) != 1 || mem[0].Offset != 0 || mem[0].Length != p.TotalBytes(0) {
		t.Fatalf("mem list = %v, want one region of %d bytes", mem, p.TotalBytes(0))
	}
}
