package patterns

import (
	"fmt"
	"math/rand"

	"pvfs/internal/ioseg"
)

// Random is a seeded pseudo-random access pattern for fuzz and
// equivalence testing: the file is carved into non-overlapping regions
// of random sizes separated by random gaps, and each region is
// assigned to a random rank. Unlike the paper's regular benchmarks it
// has no structure for any method to exploit, which makes it the
// worst honest input for cross-method equivalence tests (every method
// must still produce byte-identical results) and for the trace
// tooling. The same seed always yields the same pattern. Memory is one
// contiguous buffer per rank.
type Random struct {
	NumRanks int
	Seed     int64

	perRank []ioseg.List
	total   []int64
}

// RandomOptions bounds the generator.
type RandomOptions struct {
	// RegionsPerRank is the number of file regions each rank gets.
	RegionsPerRank int
	// MinSize and MaxSize bound region lengths (bytes).
	MinSize, MaxSize int64
	// MaxGap bounds the gap inserted between consecutive regions.
	MaxGap int64
}

// NewRandom builds a random pattern: ranks × opts.RegionsPerRank
// disjoint regions in file order, dealt to ranks by a seeded shuffle.
func NewRandom(ranks int, seed int64, opts RandomOptions) (*Random, error) {
	if ranks <= 0 || opts.RegionsPerRank <= 0 {
		return nil, fmt.Errorf("patterns: invalid random pattern: %d ranks, %d regions/rank",
			ranks, opts.RegionsPerRank)
	}
	if opts.MinSize <= 0 || opts.MaxSize < opts.MinSize || opts.MaxGap < 0 {
		return nil, fmt.Errorf("patterns: invalid random sizes [%d,%d] gap %d",
			opts.MinSize, opts.MaxSize, opts.MaxGap)
	}
	rng := rand.New(rand.NewSource(seed))
	n := ranks * opts.RegionsPerRank

	// Deal rank ids evenly, then shuffle: every rank gets exactly
	// RegionsPerRank regions at random file positions.
	owner := make([]int, n)
	for i := range owner {
		owner[i] = i % ranks
	}
	rng.Shuffle(n, func(i, j int) { owner[i], owner[j] = owner[j], owner[i] })

	p := &Random{
		NumRanks: ranks,
		Seed:     seed,
		perRank:  make([]ioseg.List, ranks),
		total:    make([]int64, ranks),
	}
	var off int64
	for i := 0; i < n; i++ {
		size := opts.MinSize + rng.Int63n(opts.MaxSize-opts.MinSize+1)
		if opts.MaxGap > 0 {
			off += rng.Int63n(opts.MaxGap + 1)
		}
		r := owner[i]
		p.perRank[r] = append(p.perRank[r], ioseg.Segment{Offset: off, Length: size})
		p.total[r] += size
		off += size
	}
	return p, nil
}

// Name implements Pattern.
func (p *Random) Name() string { return "random" }

// Ranks implements Pattern.
func (p *Random) Ranks() int { return p.NumRanks }

// FileRegions implements Pattern.
func (p *Random) FileRegions(rank int) int { return len(p.perRank[rank]) }

// FileRegion implements Pattern.
func (p *Random) FileRegion(rank, i int) ioseg.Segment { return p.perRank[rank][i] }

// MemPieces implements Pattern: memory is contiguous.
func (p *Random) MemPieces(rank int) int { return len(p.perRank[rank]) }

// TotalBytes implements Pattern.
func (p *Random) TotalBytes(rank int) int64 { return p.total[rank] }

// FileBytes is the extent of the whole pattern (the implied file size).
func (p *Random) FileBytes() int64 {
	var max int64
	for _, l := range p.perRank {
		if n := len(l); n > 0 {
			if e := l[n-1].End(); e > max {
				max = e
			}
		}
	}
	return max
}
