// Package patterns generates the noncontiguous access patterns of the
// paper's three benchmarks (§4.2–§4.4):
//
//   - Cyclic1D: the one-dimensional cyclic artificial pattern, a
//     variable-grained interleave of all clients through one file.
//   - BlockBlock: the two-dimensional block-block artificial pattern,
//     a g×g tiling of a square byte array.
//   - Flash: the FLASH I/O checkpoint write (80 blocks of 8³ elements
//     with guard cells, 24 variables; memory fragments at 8 bytes,
//     file fragments at 4 KiB).
//   - Tiled: the tiled-visualization reader (3×2 displays at
//     1024×768×24bpp with 270/128-pixel overlaps).
//
// Every pattern provides both lazy per-region access (Region(rank, i))
// for the paper-scale simulator and materialized memory/file lists for
// the real PVFS client at test scale.
package patterns

import (
	"fmt"
	"math"

	"pvfs/internal/ioseg"
)

// Pattern describes a per-rank noncontiguous file access with a
// matching memory layout.
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Ranks is the number of compute processes.
	Ranks() int
	// FileRegions is the number of contiguous file regions per rank.
	FileRegions(rank int) int
	// FileRegion returns the i-th contiguous file region of a rank, in
	// stream order.
	FileRegion(rank, i int) ioseg.Segment
	// MemPieces is the number of contiguous memory pieces per rank
	// (the (mem ∩ file) intersect-granularity entry count when memory
	// is finer than file, as in FLASH).
	MemPieces(rank int) int
	// TotalBytes is the bytes accessed by one rank.
	TotalBytes(rank int) int64
}

// FileList materializes a rank's file region list.
func FileList(p Pattern, rank int) ioseg.List {
	n := p.FileRegions(rank)
	l := make(ioseg.List, 0, n)
	for i := 0; i < n; i++ {
		l = append(l, p.FileRegion(rank, i))
	}
	return l
}

// MemPattern is implemented by patterns whose memory side is
// noncontiguous (FLASH); others use a single contiguous buffer.
type MemPattern interface {
	Pattern
	// MemRegion returns the i-th contiguous memory piece of a rank, in
	// stream order, as offsets into the rank's buffer arena.
	MemRegion(rank, i int) ioseg.Segment
	// ArenaBytes is the rank's buffer size including any padding
	// (guard cells) between pieces.
	ArenaBytes(rank int) int64
}

// MemList materializes a rank's memory region list: contiguous for
// plain patterns, piecewise for MemPatterns.
func MemList(p Pattern, rank int) ioseg.List {
	if mp, ok := p.(MemPattern); ok {
		n := mp.MemPieces(rank)
		l := make(ioseg.List, 0, n)
		for i := 0; i < n; i++ {
			l = append(l, mp.MemRegion(rank, i))
		}
		return l
	}
	return ioseg.List{{Offset: 0, Length: p.TotalBytes(rank)}}
}

// ArenaSize returns the buffer size a rank needs.
func ArenaSize(p Pattern, rank int) int64 {
	if mp, ok := p.(MemPattern); ok {
		return mp.ArenaBytes(rank)
	}
	return p.TotalBytes(rank)
}

// --- one-dimensional cyclic (§4.2.1, Figure 7) ---

// Cyclic1D interleaves equal blocks of every rank cyclically through
// the file: rank r's i-th region sits at (i*Ranks + r) * BlockSize.
// Memory per rank is one contiguous buffer.
type Cyclic1D struct {
	NumRanks int
	Accesses int   // noncontiguous regions per rank (the x-axis of Figs. 9-10)
	Total    int64 // aggregate bytes across all ranks (1 GiB in the paper)
}

// NewCyclic1D validates and builds the pattern; Total is divided
// evenly, truncating so every access is the same size (at least 1).
func NewCyclic1D(ranks, accesses int, total int64) (*Cyclic1D, error) {
	if ranks <= 0 || accesses <= 0 || total <= 0 {
		return nil, fmt.Errorf("patterns: invalid cyclic1d %d ranks %d accesses %d bytes", ranks, accesses, total)
	}
	if int64(ranks)*int64(accesses) > total {
		return nil, fmt.Errorf("patterns: cyclic1d %d x %d accesses exceed %d bytes", ranks, accesses, total)
	}
	return &Cyclic1D{NumRanks: ranks, Accesses: accesses, Total: total}, nil
}

// BlockSize is the bytes per access.
func (p *Cyclic1D) BlockSize() int64 { return p.Total / (int64(p.NumRanks) * int64(p.Accesses)) }

// Name implements Pattern.
func (p *Cyclic1D) Name() string { return "cyclic1d" }

// Ranks implements Pattern.
func (p *Cyclic1D) Ranks() int { return p.NumRanks }

// FileRegions implements Pattern.
func (p *Cyclic1D) FileRegions(rank int) int { return p.Accesses }

// FileRegion implements Pattern.
func (p *Cyclic1D) FileRegion(rank, i int) ioseg.Segment {
	bs := p.BlockSize()
	return ioseg.Segment{Offset: (int64(i)*int64(p.NumRanks) + int64(rank)) * bs, Length: bs}
}

// MemPieces implements Pattern: memory is contiguous, so pieces equal
// file regions.
func (p *Cyclic1D) MemPieces(rank int) int { return p.Accesses }

// TotalBytes implements Pattern.
func (p *Cyclic1D) TotalBytes(rank int) int64 { return p.BlockSize() * int64(p.Accesses) }

// --- two-dimensional block-block (§4.2.1, Figure 8) ---

// BlockBlock tiles an N×N byte array over a g×g process grid; each
// rank owns one tile and accesses it row piece by row piece. The
// requested access count is rounded to a whole number of pieces per
// tile row (a region cannot cross rows: rows are discontiguous).
type BlockBlock struct {
	NumRanks int
	Grid     int   // g, where NumRanks = g*g
	N        int64 // array edge in bytes (file is N*N bytes)
	PerRow   int   // pieces per tile row
}

// NewBlockBlock builds the pattern for ranks ∈ {4, 9, 16, ...} over a
// total of about `total` bytes (edge = floor(sqrt(total))), targeting
// `accesses` regions per rank.
func NewBlockBlock(ranks, accesses int, total int64) (*BlockBlock, error) {
	g := int(math.Round(math.Sqrt(float64(ranks))))
	if g*g != ranks || ranks <= 0 {
		return nil, fmt.Errorf("patterns: block-block needs a square rank count, got %d", ranks)
	}
	n := int64(math.Sqrt(float64(total)))
	if n < int64(g) {
		return nil, fmt.Errorf("patterns: total %d too small for grid %d", total, g)
	}
	tileRows := n / int64(g)
	perRow := int(int64(accesses) / tileRows)
	if perRow < 1 {
		perRow = 1
	}
	tileW := n / int64(g)
	if int64(perRow) > tileW {
		perRow = int(tileW)
	}
	return &BlockBlock{NumRanks: ranks, Grid: g, N: n, PerRow: perRow}, nil
}

// Name implements Pattern.
func (p *BlockBlock) Name() string { return "blockblock" }

// Ranks implements Pattern.
func (p *BlockBlock) Ranks() int { return p.NumRanks }

// tile returns rank's tile origin (row, col) and size (h, w) in bytes.
func (p *BlockBlock) tile(rank int) (row0, col0, h, w int64) {
	g := int64(p.Grid)
	r, c := int64(rank)/g, int64(rank)%g
	h = p.N / g
	w = p.N / g
	row0 = r * h
	col0 = c * w
	// Last row/column of tiles absorbs the remainder.
	if r == g-1 {
		h = p.N - row0
	}
	if c == g-1 {
		w = p.N - col0
	}
	return row0, col0, h, w
}

// FileRegions implements Pattern.
func (p *BlockBlock) FileRegions(rank int) int {
	_, _, h, _ := p.tile(rank)
	return int(h) * p.PerRow
}

// FileRegion implements Pattern.
func (p *BlockBlock) FileRegion(rank, i int) ioseg.Segment {
	row0, col0, _, w := p.tile(rank)
	row := int64(i / p.PerRow)
	k := int64(i % p.PerRow)
	piece := w / int64(p.PerRow)
	off := (row0+row)*p.N + col0 + k*piece
	length := piece
	if k == int64(p.PerRow)-1 {
		length = w - k*piece // last piece absorbs the row remainder
	}
	return ioseg.Segment{Offset: off, Length: length}
}

// MemPieces implements Pattern (memory contiguous).
func (p *BlockBlock) MemPieces(rank int) int { return p.FileRegions(rank) }

// TotalBytes implements Pattern.
func (p *BlockBlock) TotalBytes(rank int) int64 {
	_, _, h, w := p.tile(rank)
	return h * w
}

// ServersPerRow reports how many distinct stripe units one tile row
// advance skips: rows advance N bytes; with stripe unit s the stripe
// slot advances (N/s) mod pcount each row — the paper's block-block
// hotspot analysis (§4.2.2).
func (p *BlockBlock) ServersPerRow(stripeSize int64, pcount int) int {
	adv := (p.N / stripeSize) % int64(pcount)
	if adv == 0 {
		return 1
	}
	// Number of distinct residues of k*adv mod pcount = pcount/gcd.
	return pcount / gcd(int(adv), pcount)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// --- FLASH I/O (§4.3.1, Figures 13-14) ---

// Flash models the FLASH checkpoint write. Per rank: Blocks mesh
// blocks, each an Elems³ cube of cells surrounded by Guard guard
// cells, each cell holding Vars variables of 8 bytes. Memory is
// element-major (the 24 variables of a cell are adjacent), the file is
// variable-major, so memory fragments at 8 bytes while file regions
// are Elems³·8 bytes (4096 in the paper).
//
// File layout (Figure 14): variable v → mesh block b → rank p, each
// chunk Elems³·8 bytes:
//
//	offset(v,b,p) = ((v*Blocks + b)*Ranks + p) * Elems³ * 8
type Flash struct {
	NumRanks int
	Blocks   int // mesh blocks per rank (80 in the paper)
	Elems    int // elements per cube edge (8)
	Guard    int // guard cells per side (1)
	Vars     int // variables per element (24)
}

// DefaultFlash returns the paper's FLASH configuration for a rank
// count: 80 blocks of 8³ elements, 1 guard cell, 24 variables
// (983,040 memory pieces and 1,920 file regions of 4 KiB per rank).
func DefaultFlash(ranks int) *Flash {
	return &Flash{NumRanks: ranks, Blocks: 80, Elems: 8, Guard: 1, Vars: 24}
}

// Name implements Pattern.
func (p *Flash) Name() string { return "flashio" }

// Ranks implements Pattern.
func (p *Flash) Ranks() int { return p.NumRanks }

// chunkBytes is the contiguous file bytes per (variable, block):
// Elems³ doubles.
func (p *Flash) chunkBytes() int64 {
	e := int64(p.Elems)
	return e * e * e * 8
}

// FileRegions implements Pattern: Vars * Blocks regions per rank.
func (p *Flash) FileRegions(rank int) int { return p.Vars * p.Blocks }

// FileRegion implements Pattern. Regions are ordered (v, b), matching
// the checkpoint writer's loop nest.
func (p *Flash) FileRegion(rank, i int) ioseg.Segment {
	v := int64(i / p.Blocks)
	b := int64(i % p.Blocks)
	off := ((v*int64(p.Blocks)+b)*int64(p.NumRanks) + int64(rank)) * p.chunkBytes()
	return ioseg.Segment{Offset: off, Length: p.chunkBytes()}
}

// MemPieces implements Pattern: one 8-byte piece per (element,
// variable) = Blocks * Elems³ * Vars (983,040 in the paper).
func (p *Flash) MemPieces(rank int) int {
	return p.Blocks * p.Elems * p.Elems * p.Elems * p.Vars
}

// MemRegion implements MemPattern: the i-th 8-byte piece in file
// stream order. Stream order is (v, b, z, y, x); memory order within a
// block is element-major with guard-cell padding: the element at
// (x,y,z) of block b lives at
//
//	((b*cube + ((z+G)*edge + (y+G))*edge + (x+G)) * Vars + v) * 8
//
// where edge = Elems+2·Guard and cube = edge³.
func (p *Flash) MemRegion(rank, i int) ioseg.Segment {
	e := p.Elems
	perBlock := e * e * e // stream elements per (v,b)
	v := i / (p.Blocks * perBlock)
	rem := i % (p.Blocks * perBlock)
	b := rem / perBlock
	el := rem % perBlock
	z := el / (e * e)
	y := (el / e) % e
	x := el % e
	edge := int64(p.Elems + 2*p.Guard)
	cube := edge * edge * edge
	idx := (int64(b)*cube +
		((int64(z)+int64(p.Guard))*edge+(int64(y)+int64(p.Guard)))*edge +
		(int64(x) + int64(p.Guard)))
	off := (idx*int64(p.Vars) + int64(v)) * 8
	return ioseg.Segment{Offset: off, Length: 8}
}

// ArenaBytes implements MemPattern: blocks of padded cubes.
func (p *Flash) ArenaBytes(rank int) int64 {
	edge := int64(p.Elems + 2*p.Guard)
	return int64(p.Blocks) * edge * edge * edge * int64(p.Vars) * 8
}

// TotalBytes implements Pattern: 7.5 MiB per rank in the paper
// (80·8³·24·8 bytes).
func (p *Flash) TotalBytes(rank int) int64 {
	return int64(p.FileRegions(rank)) * p.chunkBytes()
}

// FileBytes is the checkpoint file size (rank count × 7.5 MiB).
func (p *Flash) FileBytes() int64 {
	return p.TotalBytes(0) * int64(p.NumRanks)
}

// --- tiled visualization (§4.4.1, Figure 16) ---

// Tiled models the tiled visualization reader: a TilesX×TilesY display
// wall, each tile W×H pixels at Bpp bytes per pixel, with adjacent
// tiles overlapping by OverlapX/OverlapY pixels. The frame file stores
// the merged display row-major; each rank reads its tile's rows.
type Tiled struct {
	TilesX, TilesY     int
	W, H               int // tile pixel dimensions
	Bpp                int // bytes per pixel
	OverlapX, OverlapY int // pixel overlap between adjacent tiles
}

// DefaultTiled returns the paper's configuration: 3×2 tiles of
// 1024×768 at 24-bit color, 270/128 pixel overlaps (≈10.2 MB file,
// 768 file regions of 3072 bytes per rank).
func DefaultTiled() *Tiled {
	return &Tiled{TilesX: 3, TilesY: 2, W: 1024, H: 768, Bpp: 3, OverlapX: 270, OverlapY: 128}
}

// Name implements Pattern.
func (p *Tiled) Name() string { return "tiledviz" }

// Ranks implements Pattern.
func (p *Tiled) Ranks() int { return p.TilesX * p.TilesY }

// frameW is the merged display width in pixels.
func (p *Tiled) frameW() int64 {
	return int64(p.TilesX*p.W - (p.TilesX-1)*p.OverlapX)
}

// frameH is the merged display height in pixels.
func (p *Tiled) frameH() int64 {
	return int64(p.TilesY*p.H - (p.TilesY-1)*p.OverlapY)
}

// FileBytes is the frame file size (≈10.2 MB for the defaults).
func (p *Tiled) FileBytes() int64 { return p.frameW() * p.frameH() * int64(p.Bpp) }

// RowBytes is one merged display row.
func (p *Tiled) RowBytes() int64 { return p.frameW() * int64(p.Bpp) }

// FileRegions implements Pattern: one region per tile row (768).
func (p *Tiled) FileRegions(rank int) int { return p.H }

// FileRegion implements Pattern.
func (p *Tiled) FileRegion(rank, i int) ioseg.Segment {
	tx := int64(rank % p.TilesX)
	ty := int64(rank / p.TilesX)
	x0 := tx * int64(p.W-p.OverlapX)
	y0 := ty * int64(p.H-p.OverlapY)
	off := (y0+int64(i))*p.RowBytes() + x0*int64(p.Bpp)
	return ioseg.Segment{Offset: off, Length: int64(p.W) * int64(p.Bpp)}
}

// MemPieces implements Pattern (tile memory contiguous).
func (p *Tiled) MemPieces(rank int) int { return p.H }

// TotalBytes implements Pattern: W*H*Bpp per rank (≈2.36 MB).
func (p *Tiled) TotalBytes(rank int) int64 {
	return int64(p.W) * int64(p.H) * int64(p.Bpp)
}

// UsefulFraction is the share of a sieve read a tile actually uses —
// the paper's 1/TilesX estimate (§4.4.1).
func (p *Tiled) UsefulFraction() float64 { return 1 / float64(p.TilesX) }
