package striping

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pvfs/internal/ioseg"
)

func cfg(pcount int, ssize int64) Config {
	return Config{Base: 0, PCount: pcount, StripeSize: ssize}
}

func TestValidate(t *testing.T) {
	if err := cfg(8, 16384).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{PCount: 0, StripeSize: 16384},
		{PCount: 8, StripeSize: 0},
		{PCount: 8, StripeSize: -4},
		{Base: -1, PCount: 8, StripeSize: 16384},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestServerFor(t *testing.T) {
	c := cfg(4, 100)
	cases := []struct {
		off  int64
		want int
	}{
		{0, 0}, {99, 0}, {100, 1}, {399, 3}, {400, 0}, {950, 1},
	}
	for _, tc := range cases {
		if got := c.ServerFor(tc.off); got != tc.want {
			t.Errorf("ServerFor(%d) = %d, want %d", tc.off, got, tc.want)
		}
	}
}

func TestAbsoluteServer(t *testing.T) {
	c := Config{Base: 6, PCount: 4, StripeSize: 100}
	if got := c.AbsoluteServer(0, 8); got != 6 {
		t.Errorf("AbsoluteServer(0) = %d, want 6", got)
	}
	if got := c.AbsoluteServer(3, 8); got != 1 {
		t.Errorf("AbsoluteServer(3) = %d, want 1 (wraps)", got)
	}
}

func TestPhysicalLogicalRoundTrip(t *testing.T) {
	c := cfg(8, 16384)
	offsets := []int64{0, 1, 16383, 16384, 16385, 131071, 131072, 1 << 30}
	for _, off := range offsets {
		rel := c.ServerFor(off)
		phys := c.PhysicalOffset(off)
		if back := c.LogicalOffset(rel, phys); back != off {
			t.Errorf("round trip %d -> (s%d,%d) -> %d", off, rel, phys, back)
		}
	}
}

func TestPhysicalOffsetDense(t *testing.T) {
	// Server stripe files must be dense: consecutive stripe units on one
	// server map to consecutive physical ranges.
	c := cfg(4, 100)
	// Server 1 holds logical [100,200) and [500,600); physically [0,100) and [100,200).
	if got := c.PhysicalOffset(100); got != 0 {
		t.Errorf("PhysicalOffset(100) = %d, want 0", got)
	}
	if got := c.PhysicalOffset(500); got != 100 {
		t.Errorf("PhysicalOffset(500) = %d, want 100", got)
	}
	if got := c.PhysicalOffset(555); got != 155 {
		t.Errorf("PhysicalOffset(555) = %d, want 155", got)
	}
}

func TestSplitSmallSegment(t *testing.T) {
	c := cfg(8, 16384)
	// Sub-stripe segment stays on one server.
	ps := c.Split(ioseg.Segment{Offset: 16390, Length: 100})
	if len(ps) != 1 {
		t.Fatalf("pieces = %d, want 1", len(ps))
	}
	if ps[0].Server != 1 {
		t.Errorf("server = %d, want 1", ps[0].Server)
	}
	if ps[0].Phys != (ioseg.Segment{Offset: 6, Length: 100}) {
		t.Errorf("phys = %v", ps[0].Phys)
	}
}

func TestSplitSpanningSegment(t *testing.T) {
	c := cfg(4, 100)
	ps := c.Split(ioseg.Segment{Offset: 50, Length: 300})
	// Covers [50,350): pieces [50,100) s0, [100,200) s1, [200,300) s2, [300,350) s3.
	if len(ps) != 4 {
		t.Fatalf("pieces = %d, want 4: %v", len(ps), ps)
	}
	wantServers := []int{0, 1, 2, 3}
	var total int64
	for i, p := range ps {
		if p.Server != wantServers[i] {
			t.Errorf("piece %d server = %d, want %d", i, p.Server, wantServers[i])
		}
		total += p.Phys.Length
		if p.Phys.Length != p.Logical.Length {
			t.Errorf("piece %d phys/logical length mismatch", i)
		}
	}
	if total != 300 {
		t.Errorf("total = %d, want 300", total)
	}
}

func TestSplitEmpty(t *testing.T) {
	if ps := cfg(4, 100).Split(ioseg.Segment{Offset: 5}); ps != nil {
		t.Fatalf("Split(empty) = %v", ps)
	}
}

func TestSplitList(t *testing.T) {
	c := cfg(2, 10)
	l := ioseg.List{{Offset: 0, Length: 25}, {Offset: 40, Length: 5}}
	m := c.SplitList(l)
	// [0,10) s0, [10,20) s1, [20,25) s0 ; [40,45) s0.
	if len(m[0]) != 3 || len(m[1]) != 1 {
		t.Fatalf("per-server pieces: s0=%d s1=%d", len(m[0]), len(m[1]))
	}
	var total int64
	for _, ps := range m {
		for _, p := range ps {
			total += p.Phys.Length
		}
	}
	if total != l.TotalLength() {
		t.Fatalf("total = %d, want %d", total, l.TotalLength())
	}
}

func TestServersTouched(t *testing.T) {
	c := cfg(8, 16384)
	// Strided rows advancing 2 stripes each touch only even servers —
	// the block-block hotspot scenario from the paper.
	var l ioseg.List
	for r := int64(0); r < 16; r++ {
		l = append(l, ioseg.Segment{Offset: r * 2 * 16384, Length: 1000})
	}
	got := c.ServersTouched(l)
	want := []int{0, 2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("ServersTouched = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ServersTouched = %v, want %v", got, want)
		}
	}
}

func TestFileSizeFromStripes(t *testing.T) {
	c := cfg(4, 100)
	// Server 2 has 150 physical bytes: last byte phys=149 → logical
	// offset = 1*400 + 2*100 + 49 = 649 → size 650.
	sizes := []int64{100, 100, 150, 0}
	if got := c.FileSizeFromStripes(sizes); got != 650 {
		t.Fatalf("FileSizeFromStripes = %d, want 650", got)
	}
	if got := c.FileSizeFromStripes([]int64{0, 0, 0, 0}); got != 0 {
		t.Fatalf("empty stripes size = %d", got)
	}
}

// Property: Split covers the segment exactly, in order, with no piece
// crossing a stripe boundary, and every piece round-trips through the
// physical/logical mapping.
func TestSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := cfg(1+r.Intn(16), int64(1+r.Intn(1000)))
		s := ioseg.Segment{Offset: int64(r.Intn(100000)), Length: int64(r.Intn(10000))}
		ps := c.Split(s)
		off := s.Offset
		var total int64
		for _, p := range ps {
			if p.Logical.Offset != off {
				return false
			}
			if p.Server != c.ServerFor(p.Logical.Offset) {
				return false
			}
			if c.PhysicalOffset(p.Logical.Offset) != p.Phys.Offset {
				return false
			}
			if c.LogicalOffset(p.Server, p.Phys.Offset) != p.Logical.Offset {
				return false
			}
			// No piece may cross a stripe unit boundary.
			if p.Phys.Offset/c.StripeSize != (p.Phys.End()-1)/c.StripeSize {
				return false
			}
			off += p.Logical.Length
			total += p.Logical.Length
		}
		return total == s.Length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: physical offsets assigned to one server are unique across
// distinct logical stripe units (no aliasing).
func TestNoPhysicalAliasing(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := cfg(1+r.Intn(8), int64(16+r.Intn(512)))
		type key struct {
			server int
			phys   int64
		}
		seen := make(map[key]int64)
		for i := 0; i < 500; i++ {
			off := int64(r.Intn(1 << 20))
			k := key{c.ServerFor(off), c.PhysicalOffset(off)}
			if prev, ok := seen[k]; ok && prev != off {
				return false
			}
			seen[k] = off
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplitList(b *testing.B) {
	c := cfg(8, 16384)
	var l ioseg.List
	for i := int64(0); i < 1024; i++ {
		l = append(l, ioseg.Segment{Offset: i * 40000, Length: 30000})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.SplitList(l)
	}
}

// Property: ClipServer(s, rel) yields exactly the pieces Split(s)
// assigns to rel, in the same order — it is the per-server projection
// the I/O daemon uses to avoid computing other servers' shares.
func TestClipServerMatchesSplit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := cfg(1+r.Intn(8), int64(16+r.Intn(512)))
		for i := 0; i < 50; i++ {
			s := ioseg.Segment{Offset: int64(r.Intn(1 << 16)), Length: int64(r.Intn(4096))}
			want := make(map[int][]Piece)
			for _, p := range c.Split(s) {
				want[p.Server] = append(want[p.Server], p)
			}
			for rel := 0; rel < c.PCount; rel++ {
				var got []Piece
				if !c.ClipServer(s, rel, func(p Piece) bool {
					got = append(got, p)
					return true
				}) {
					return false
				}
				if len(got) != len(want[rel]) {
					return false
				}
				for i := range got {
					if got[i] != want[rel][i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClipServerEarlyStop(t *testing.T) {
	c := cfg(2, 64)
	n := 0
	done := c.ClipServer(ioseg.Segment{Offset: 0, Length: 64 * 20}, 0, func(Piece) bool {
		n++
		return false
	})
	if done || n != 1 {
		t.Fatalf("early stop: done=%v n=%d", done, n)
	}
}

// TestClipServerNearMaxInt64 is a regression test: segments ending
// near the top of int64 offset space must terminate (the unit-advance
// arithmetic used to wrap past MaxInt64 and loop forever) and emit
// exactly the bytes of the segment across all servers, once each.
func TestClipServerNearMaxInt64(t *testing.T) {
	cfg := Config{PCount: 2, StripeSize: 4096}
	const maxI64 = int64(^uint64(0) >> 1)
	for _, seg := range []ioseg.Segment{
		{Offset: maxI64 - 4096, Length: 4096},
		{Offset: maxI64 - 10000, Length: 10000},
		{Offset: maxI64 - 1, Length: 1},
	} {
		var total int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for rel := 0; rel < cfg.PCount; rel++ {
				cfg.ClipServer(seg, rel, func(p Piece) bool {
					if p.Logical.Offset < seg.Offset || p.Logical.End() > seg.End() {
						t.Errorf("piece %v outside segment %v", p.Logical, seg)
					}
					total += p.Logical.Length
					return true
				})
			}
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("ClipServer hangs on %v", seg)
		}
		if total != seg.Length {
			t.Fatalf("segment %v: clipped %d bytes across servers, want %d", seg, total, seg.Length)
		}
	}
}
