// Package striping implements PVFS file striping arithmetic: the mapping
// between a file's logical byte space and the physical stripe files held
// by the I/O daemons.
//
// PVFS stripes each file round-robin across a user-selected set of I/O
// servers: the stripe unit (default 16 KiB in the paper's experiments)
// rotates from a base server across pcount servers. Each server stores
// its stripe units densely in a local stripe file, so logical offset L
// maps to server s and a physical offset P inside that server's file.
package striping

import (
	"fmt"

	"pvfs/internal/ioseg"
)

// DefaultStripeSize is the PVFS default stripe unit used throughout the
// paper's experiments (16,384 bytes).
const DefaultStripeSize = 16384

// Config describes how one file is striped. It mirrors the PVFS file
// metadata: the index of the first server, the number of servers used,
// and the stripe unit size.
type Config struct {
	Base       int   // index of the first I/O server for stripe 0
	PCount     int   // number of I/O servers the file is striped across
	StripeSize int64 // bytes per stripe unit
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.PCount <= 0:
		return fmt.Errorf("striping: pcount %d must be positive", c.PCount)
	case c.StripeSize <= 0:
		return fmt.Errorf("striping: stripe size %d must be positive", c.StripeSize)
	case c.Base < 0:
		return fmt.Errorf("striping: base %d must be non-negative", c.Base)
	}
	return nil
}

// ServerFor returns the index (0..PCount-1, relative to Base rotation)
// of the server holding the stripe unit containing logical offset off.
// The absolute server is (Base + ServerFor(off)) mod cluster size; this
// package works in relative indices and leaves Base application to the
// caller via AbsoluteServer.
func (c Config) ServerFor(off int64) int {
	return int((off / c.StripeSize) % int64(c.PCount))
}

// AbsoluteServer converts a relative server index to an index into the
// cluster's server table of size total.
func (c Config) AbsoluteServer(rel, total int) int {
	if total <= 0 {
		return rel
	}
	return (c.Base + rel) % total
}

// PhysicalOffset maps a logical file offset to the offset inside the
// holding server's local stripe file. Each server stores its stripe
// units back to back, so physical offset = (full cycles below off) *
// stripe + remainder within the unit.
func (c Config) PhysicalOffset(off int64) int64 {
	cycle := c.StripeSize * int64(c.PCount)
	return (off/cycle)*c.StripeSize + off%c.StripeSize
}

// LogicalOffset is the inverse of PhysicalOffset for a given relative
// server index: it maps a physical offset in server rel's stripe file
// back to the logical file offset.
func (c Config) LogicalOffset(rel int, phys int64) int64 {
	cycle := c.StripeSize * int64(c.PCount)
	return (phys/c.StripeSize)*cycle + int64(rel)*c.StripeSize + phys%c.StripeSize
}

// Piece is a contiguous run of bytes that lives entirely on one server:
// the unit of work a single I/O daemon performs for one logical segment.
type Piece struct {
	Server  int           // relative server index
	Phys    ioseg.Segment // extent in the server's local stripe file
	Logical ioseg.Segment // extent in the file's logical byte space
}

// Split decomposes one logical segment into per-server pieces in
// ascending logical order. A segment smaller than the stripe unit maps
// to a single piece; larger segments alternate servers every stripe
// boundary, exactly as the PVFS client library scatters a contiguous
// request.
func (c Config) Split(s ioseg.Segment) []Piece {
	if s.Empty() {
		return nil
	}
	est := int(s.Length/c.StripeSize) + 2
	out := make([]Piece, 0, est)
	c.SplitFunc(s, func(p Piece) { out = append(out, p) })
	return out
}

// SplitFunc is Split without the slice: it invokes fn for each piece in
// ascending logical order. The I/O hot path uses it to stream pieces
// into preallocated per-server schedules without allocating a []Piece
// per logical segment.
func (c Config) SplitFunc(s ioseg.Segment, fn func(Piece)) {
	off := s.Offset
	remain := s.Length
	for remain > 0 {
		inUnit := c.StripeSize - off%c.StripeSize
		n := inUnit
		if remain < n {
			n = remain
		}
		fn(Piece{
			Server:  c.ServerFor(off),
			Phys:    ioseg.Segment{Offset: c.PhysicalOffset(off), Length: n},
			Logical: ioseg.Segment{Offset: off, Length: n},
		})
		off += n
		remain -= n
	}
}

// ClipServer invokes fn for each piece of s that lives on relative
// server rel, in ascending logical order, stopping early when fn
// returns false; it reports whether the walk ran to completion. Unlike
// SplitFunc it visits only rel's stripe units, so the cost is
// proportional to the pieces on rel rather than to every piece of s —
// the shape an I/O daemon needs to intersect a logical access pattern
// with its own stripe (DESIGN.md §6) without paying for the other
// servers' shares.
func (c Config) ClipServer(s ioseg.Segment, rel int, fn func(Piece) bool) bool {
	if s.Empty() {
		return true
	}
	cycle := c.StripeSize * int64(c.PCount)
	relStart := int64(rel) * c.StripeSize
	// First cycle whose rel-unit could intersect s. unitLo cannot
	// overflow here: when k > 0 it is at most s.Offset by construction.
	k := int64(0)
	if s.Offset > relStart {
		k = (s.Offset - relStart) / cycle
	}
	for unitLo := k*cycle + relStart; unitLo < s.End(); {
		lo, hi := unitLo, unitLo+c.StripeSize
		if hi < unitLo { // unit straddles the top of int64 offset space
			hi = s.End()
		}
		if s.Offset > lo {
			lo = s.Offset
		}
		if e := s.End(); e < hi {
			hi = e
		}
		if lo < hi {
			if !fn(Piece{
				Server:  rel,
				Phys:    ioseg.Segment{Offset: c.PhysicalOffset(lo), Length: hi - lo},
				Logical: ioseg.Segment{Offset: lo, Length: hi - lo},
			}) {
				return false
			}
		}
		next := unitLo + cycle
		if next < unitLo { // offset space exhausted: no further units
			return true
		}
		unitLo = next
	}
	return true
}

// SplitList decomposes a logical segment list into per-server physical
// segment lists. The returned map is keyed by relative server index;
// each list preserves the order pieces appear in the logical request,
// which is the order the I/O daemon must apply them against the stream
// of request data.
func (c Config) SplitList(l ioseg.List) map[int][]Piece {
	out := make(map[int][]Piece)
	for _, s := range l {
		for _, p := range c.Split(s) {
			out[p.Server] = append(out[p.Server], p)
		}
	}
	return out
}

// ServersTouched returns the set (as a sorted bitmap-backed slice) of
// relative server indices a segment list touches. The paper's
// block-block analysis hinges on this: patterns that touch few servers
// concentrate load and saturate earlier (Figure 11's kink).
func (c Config) ServersTouched(l ioseg.List) []int {
	seen := make([]bool, c.PCount)
	for _, s := range l {
		for _, p := range c.Split(s) {
			seen[p.Server] = true
		}
	}
	var out []int
	for i, b := range seen {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// PhysPrefix returns how many physical bytes of the logical prefix
// [0, size) land on relative server rel: the stripe file size server
// rel holds once the prefix is fully written.
func (c Config) PhysPrefix(rel int, size int64) int64 {
	if size <= 0 {
		return 0
	}
	cycle := c.StripeSize * int64(c.PCount)
	full := size / cycle
	rem := size % cycle
	phys := full * c.StripeSize
	relStart := int64(rel) * c.StripeSize
	switch {
	case rem >= relStart+c.StripeSize:
		phys += c.StripeSize
	case rem > relStart:
		phys += rem - relStart
	}
	return phys
}

// PhysRange returns how many physical bytes of logical window
// [start, end) land on relative server rel.
func (c Config) PhysRange(rel int, start, end int64) int64 {
	return c.PhysPrefix(rel, end) - c.PhysPrefix(rel, start)
}

// FileSizeFromStripes computes the logical file size implied by the
// per-server physical stripe file sizes (index = relative server).
// PVFS derives file size this way: the logical end is the maximum
// logical offset mapped by any server's last physical byte.
func (c Config) FileSizeFromStripes(physSizes []int64) int64 {
	var size int64
	for rel, ps := range physSizes {
		if ps == 0 {
			continue
		}
		end := c.LogicalOffset(rel, ps-1) + 1
		if end > size {
			size = end
		}
	}
	return size
}
