package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/iod"
	"pvfs/internal/ioseg"
	"pvfs/internal/mgr"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/store"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

// Recovery: transient transport failures must be retryable when the
// caller opts in (FS.SetRetries), while server-reported errors must
// fail immediately. The original PVFS had no retry, so 0 is the
// default; these tests cover the opt-in path.

func writeSeeded(t *testing.T, fs *client.FS, name string, n, pcount int) []byte {
	t.Helper()
	f, err := fs.Create(name, striping.Config{PCount: pcount, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRetryRecoversFromDroppedConnection(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	want := writeSeeded(t, fs, "retry.dat", 1024, 4)

	f, err := fs.Open("retry.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var faults pvfsnet.Faults
	c.IODs[1].Net().SetFaults(&faults)

	// Without retries, a dropped connection surfaces as an error.
	faults.DropConnections(1)
	buf := make([]byte, len(want))
	if _, err := f.ReadAt(buf, 0); err == nil {
		t.Fatal("read across a dropped connection succeeded without retries")
	}
	if _, dropped := faults.Counts(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}

	// With retries, the same failure is absorbed: the client redials
	// and repeats the call.
	fs.SetRetries(2)
	faults.DropConnections(1)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read with retries failed: %v", err)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x after retried read", i, buf[i], want[i])
		}
	}
	if got := fs.Counters().Retries.Load(); got == 0 {
		t.Error("retry counter not incremented")
	}
}

func TestServerErrorsAreNotRetried(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	writeSeeded(t, fs, "srverr.dat", 256, 2)
	f, err := fs.Open("srverr.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var faults pvfsnet.Faults
	c.IODs[0].Net().SetFaults(&faults)
	fs.SetRetries(3)
	faults.FailRequests(1)

	buf := make([]byte, 8)
	_, err = f.ReadAt(buf, 0) // stripe 0 lives on iod 0
	if err == nil {
		t.Fatal("read answered StatusIOError succeeded")
	}
	var se *wire.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a StatusError", err)
	}
	if got := fs.Counters().Retries.Load(); got != 0 {
		t.Errorf("server error consumed %d retries, want 0", got)
	}
	failed, _ := faults.Counts()
	if failed != 1 {
		t.Errorf("failed = %d, want 1 (no retried attempts)", failed)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	writeSeeded(t, fs, "exhaust.dat", 256, 2)
	f, err := fs.Open("exhaust.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var faults pvfsnet.Faults
	c.IODs[0].Net().SetFaults(&faults)
	fs.SetRetries(2)
	faults.DropConnections(10) // more drops than attempts

	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err == nil {
		t.Fatal("read succeeded with every attempt dropped")
	}
	if got := fs.Counters().Retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2 (exhausted)", got)
	}
}

// TestIODRestartSameAddress is the full recovery scenario: an I/O
// daemon dies and is restarted on the same address over the same
// store (as an init system would). A retrying client carries on; the
// data written before the crash is intact.
func TestIODRestartSameAddress(t *testing.T) {
	// Hand-built deployment so the test holds the stores.
	stores := []*store.Mem{store.NewMem(), store.NewMem()}
	iods := make([]*iod.Server, 2)
	addrs := make([]string, 2)
	var err error
	for i := range iods {
		if iods[i], err = iod.Listen("127.0.0.1:0", stores[i], nil); err != nil {
			t.Fatal(err)
		}
		addrs[i] = iods[i].Addr()
		defer func(i int) { iods[i].Close() }(i)
	}
	m, err := mgr.Listen("127.0.0.1:0", addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	fs, err := client.Connect(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.SetRetries(3)
	want := writeSeeded(t, fs, "survivor.dat", 512, 2)

	// Crash iod 1, then restart it on the same address and store.
	if err := iods[1].Close(); err != nil {
		t.Fatal(err)
	}
	restarted, err := iod.Listen(addrs[1], stores[1], nil)
	if err != nil {
		t.Fatalf("restart on %s: %v", addrs[1], err)
	}
	defer restarted.Close()

	f, err := fs.Open("survivor.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x after daemon restart", i, got[i], want[i])
		}
	}
	// Writes keep working too.
	if _, err := f.WriteAt([]byte("fresh"), 0); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

func TestFaultDelayOnlySlowsCalls(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	writeSeeded(t, fs, "slow.dat", 128, 2)
	f, err := fs.Open("slow.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var faults pvfsnet.Faults
	faults.SetDelay(5 * time.Millisecond)
	c.IODs[0].Net().SetFaults(&faults)

	start := time.Now()
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("delayed read failed: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("read completed in %v despite a 5ms injected delay", d)
	}
}

// TestUnavailableIsRetrySafe: StatusUnavailable is the one
// server-reported status a retry policy may re-issue on — the daemon
// answered but refused service (draining). Other statuses remain
// verdicts (TestServerErrorsAreNotRetried).
func TestUnavailableIsRetrySafe(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	want := writeSeeded(t, fs, "unav.dat", 256, 2)
	f, err := fs.Open("unav.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var faults pvfsnet.Faults
	c.IODs[0].Net().SetFaults(&faults)

	// Without a policy the refusal surfaces as a StatusError.
	faults.UnavailableRequests(1)
	buf := make([]byte, 8)
	_, err = f.ReadAt(buf, 0)
	var se *wire.StatusError
	if !errors.As(err, &se) || se.Status != wire.StatusUnavailable {
		t.Fatalf("unretried unavailable = %v, want StatusUnavailable", err)
	}

	// With a policy the refusals are absorbed, with backoff, on the
	// same healthy connection.
	fs.SetRetryPolicy(client.RetryPolicy{Max: 3, Backoff: time.Millisecond})
	faults.UnavailableRequests(2)
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read through two unavailable answers: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}
	if r := fs.Counters().Retries.Load(); r != 2 {
		t.Errorf("retries = %d, want 2", r)
	}
}

// TestRequestRetryOverridesFSPolicy: a per-Request policy governs its
// own calls even when the FS default is no-retry.
func TestRequestRetryOverridesFSPolicy(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	want := writeSeeded(t, fs, "override.dat", 256, 2)
	f, err := fs.Open("override.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var faults pvfsnet.Faults
	c.IODs[0].Net().SetFaults(&faults)
	faults.DropConnections(1)

	got := make([]byte, len(want))
	_, err = f.Run(context.Background(), client.Request{
		Arena: got,
		File:  ioseg.List{{Offset: 0, Length: int64(len(want))}},
		Retry: &client.RetryPolicy{Max: 2, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("read with per-request retries failed: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}

	// The FS default is still no-retry: the next drop fails.
	faults.DropConnections(1)
	if _, err := f.ReadAt(got, 0); err == nil {
		t.Fatal("FS-level call inherited the per-request policy")
	}
}

// TestRetryExhaustionReturnsTypedError: the bounded policy surfaces
// *client.RetryError with the attempt count, wrapping the final
// transport failure.
func TestRetryExhaustionReturnsTypedError(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	writeSeeded(t, fs, "typed.dat", 256, 2)
	f, err := fs.Open("typed.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var faults pvfsnet.Faults
	c.IODs[0].Net().SetFaults(&faults)
	fs.SetRetryPolicy(client.RetryPolicy{Max: 2, Backoff: time.Millisecond})
	faults.DropConnections(10)

	buf := make([]byte, 8)
	_, err = f.ReadAt(buf, 0)
	var re *client.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("exhaustion error %v (%T) is not *client.RetryError", err, err)
	}
	if re.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", re.Attempts)
	}
	if re.Err == nil {
		t.Error("RetryError does not wrap the final failure")
	}
}

// TestBackoffDelaysRetries: exponential backoff actually spaces the
// attempts out.
func TestBackoffDelaysRetries(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	writeSeeded(t, fs, "backoff.dat", 64, 1)
	f, err := fs.Open("backoff.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var faults pvfsnet.Faults
	c.IODs[0].Net().SetFaults(&faults)
	fs.SetRetryPolicy(client.RetryPolicy{Max: 2, Backoff: 20 * time.Millisecond})
	faults.UnavailableRequests(2) // retries at +20ms and +40ms

	start := time.Now()
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read failed: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("two backoff retries completed in %v, want >= 60ms-ish", d)
	}
}
