package client_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pvfs/internal/client"
	"pvfs/internal/ioseg"
)

func seg(off, n int64) ioseg.Segment { return ioseg.Segment{Offset: off, Length: n} }

func TestSieveWindowsSingleWindow(t *testing.T) {
	file := ioseg.List{seg(100, 10), seg(200, 10), seg(300, 10)}
	w := client.SieveWindows(file, 1<<20)
	if len(w) != 1 || w[0] != seg(100, 210) {
		t.Fatalf("windows = %v", w)
	}
}

func TestSieveWindowsSplitsAtBuffer(t *testing.T) {
	file := ioseg.List{seg(0, 50), seg(60, 50)}
	w := client.SieveWindows(file, 64)
	// First window covers [0, 64) (cuts the second region), second
	// covers the remainder [64, 110).
	if len(w) != 2 {
		t.Fatalf("windows = %v", w)
	}
	if w[0] != seg(0, 64) || w[1] != seg(64, 46) {
		t.Fatalf("windows = %v", w)
	}
}

func TestSieveWindowsSkipEmptyRuns(t *testing.T) {
	// Two distant clusters: no window may cover the dead middle.
	file := ioseg.List{seg(0, 10), seg(5, 10), seg(1<<30, 10)}
	w := client.SieveWindows(file, 1024)
	if len(w) != 2 {
		t.Fatalf("windows = %v", w)
	}
	if w[0] != seg(0, 15) {
		t.Fatalf("first window = %v", w[0])
	}
	if w[1] != seg(1<<30, 10) {
		t.Fatalf("second window = %v", w[1])
	}
}

func TestSieveWindowsEmpty(t *testing.T) {
	if w := client.SieveWindows(nil, 1024); len(w) != 0 {
		t.Fatalf("windows of nothing = %v", w)
	}
}

// Property: windows are sorted, non-overlapping, each at most bufSize,
// and every region byte is covered by exactly one window.
func TestSieveWindowsProperty(t *testing.T) {
	f := func(seed int64, bufRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		buf := int64(bufRaw%2000) + 16
		var file ioseg.List
		pos := int64(r.Intn(100))
		for i := 0; i < 30; i++ {
			n := int64(1 + r.Intn(300))
			file = append(file, seg(pos, n))
			pos += n + int64(r.Intn(3000))
		}
		windows := client.SieveWindows(file, buf)
		var prevEnd int64 = -1
		var covered int64
		for _, w := range windows {
			if w.Length <= 0 || w.Length > buf {
				return false
			}
			if w.Offset < prevEnd {
				return false
			}
			prevEnd = w.End()
			covered += file.Clip(w).TotalLength()
		}
		return covered == file.TotalLength()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
