package client

import (
	"context"
	"fmt"

	"pvfs/internal/ioseg"
	"pvfs/internal/memio"
)

// DefaultSieveBuffer is the data sieving buffer size used throughout
// the paper's experiments (32 MB, §3.2).
const DefaultSieveBuffer = 32 << 20

// SieveOptions tunes data sieving I/O.
type SieveOptions struct {
	// BufferSize of the client-side sieve buffer; 0 selects the
	// paper's 32 MB default.
	BufferSize int64
}

func (o SieveOptions) bufferSize() int64 {
	if o.BufferSize <= 0 {
		return DefaultSieveBuffer
	}
	return o.BufferSize
}

// SieveStats reports the data movement of a sieving operation — in
// particular the impertinent ("useless") bytes transferred, the cost
// the paper attributes to sieving on sparse patterns (§3.4).
type SieveStats struct {
	Windows       int   // contiguous buffer operations performed
	BytesAccessed int64 // bytes moved over the network (per direction)
	BytesUseful   int64 // bytes belonging to requested regions
}

// UselessFraction is the share of accessed bytes that were not wanted.
func (s SieveStats) UselessFraction() float64 {
	if s.BytesAccessed == 0 {
		return 0
	}
	return 1 - float64(s.BytesUseful)/float64(s.BytesAccessed)
}

// SieveWindows plans the contiguous windows covering the (normalized)
// file regions: each window starts at the next needed byte and spans
// at most bufSize bytes, as ROMIO's data sieving does. Windows never
// overlap, jointly cover every region byte, and skip runs of the file
// that contain no wanted data.
func SieveWindows(file ioseg.List, bufSize int64) []ioseg.Segment {
	sorted := file.Normalize()
	var windows []ioseg.Segment
	i := 0
	var pos int64
	if len(sorted) > 0 {
		pos = sorted[0].Offset
	}
	for i < len(sorted) {
		// Advance past regions fully covered by earlier windows.
		for i < len(sorted) && sorted[i].End() <= pos {
			i++
		}
		if i == len(sorted) {
			break
		}
		ws := sorted[i].Offset
		if pos > ws {
			ws = pos
		}
		wend := ws + bufSize
		// The window ends at the last needed byte before wend.
		we := ws
		for j := i; j < len(sorted) && sorted[j].Offset < wend; j++ {
			e := sorted[j].End()
			if e > wend {
				e = wend
			}
			if e > we {
				we = e
			}
			if sorted[j].End() > wend {
				break
			}
		}
		windows = append(windows, ioseg.Segment{Offset: ws, Length: we - ws})
		pos = we
	}
	return windows
}

// ReadSieve performs the noncontiguous read via data sieving: large
// contiguous reads into a client buffer, extracting the wanted regions
// in memory (§3.2). It is a synchronous wrapper over Start.
func (f *File) ReadSieve(arena []byte, mem, file ioseg.List, opts SieveOptions) (SieveStats, error) {
	res, err := f.Run(context.Background(), Request{
		Arena: arena, Mem: mem, File: file, Method: AccessSieve, Sieve: opts,
	})
	return res.Sieve, err
}

// WriteSieve performs the noncontiguous write via data sieving:
// read-modify-write of each window (§3.2). PVFS has no file locking,
// so concurrent WriteSieve calls to overlapping extents race; the
// paper serializes writers with a barrier (§4.2.1), which callers of
// this method must arrange themselves (see cluster.Barrier).
func (f *File) WriteSieve(arena []byte, mem, file ioseg.List, opts SieveOptions) (SieveStats, error) {
	res, err := f.Run(context.Background(), Request{
		Write: true, Arena: arena, Mem: mem, File: file, Method: AccessSieve, Sieve: opts,
	})
	return res.Sieve, err
}

// readSieve is the sieving datapath shared by Start and the legacy
// wrappers.
func (f *File) readSieve(ctx context.Context, arena []byte, mem, file ioseg.List, opts SieveOptions) (SieveStats, error) {
	var st SieveStats
	if err := checkLists(arena, mem, file); err != nil {
		return st, err
	}
	stream := make([]byte, file.TotalLength())
	buf := make([]byte, 0)
	for _, w := range SieveWindows(file, opts.bufferSize()) {
		if int64(cap(buf)) < w.Length {
			buf = make([]byte, w.Length)
		}
		buf = buf[:w.Length]
		if err := f.readContig(ctx, buf, w.Offset, &f.fs.stats.Sieve); err != nil {
			return st, err
		}
		useful, err := memio.ExtractWindow(stream, file, buf, w)
		if err != nil {
			return st, err
		}
		st.Windows++
		st.BytesAccessed += w.Length
		st.BytesUseful += useful
	}
	if err := memio.Scatter(arena, mem, stream); err != nil {
		return st, err
	}
	return st, nil
}

func (f *File) writeSieve(ctx context.Context, arena []byte, mem, file ioseg.List, opts SieveOptions) (SieveStats, error) {
	var st SieveStats
	if err := checkLists(arena, mem, file); err != nil {
		return st, err
	}
	stream, err := memio.Gather(arena, mem)
	if err != nil {
		return st, err
	}
	buf := make([]byte, 0)
	for _, w := range SieveWindows(file, opts.bufferSize()) {
		if int64(cap(buf)) < w.Length {
			buf = make([]byte, w.Length)
		}
		buf = buf[:w.Length]
		// Read-modify-write: fetch the window, inject the regions,
		// write the whole window back.
		if err := f.readContig(ctx, buf, w.Offset, &f.fs.stats.Sieve); err != nil {
			return st, err
		}
		useful, err := memio.InjectWindow(buf, stream, file, w)
		if err != nil {
			return st, err
		}
		if err := f.writeContig(ctx, buf, w.Offset, &f.fs.stats.Sieve); err != nil {
			return st, err
		}
		st.Windows++
		st.BytesAccessed += 2 * w.Length // read + write back
		st.BytesUseful += useful
	}
	return st, nil
}

// Method names a noncontiguous access strategy.
type Method int

const (
	// MethodMultiple is one contiguous request per region (§3.1).
	MethodMultiple Method = iota
	// MethodSieve is data sieving I/O (§3.2).
	MethodSieve
	// MethodList is list I/O (§3.3), the paper's contribution.
	MethodList
)

func (m Method) String() string {
	switch m {
	case MethodMultiple:
		return "multiple"
	case MethodSieve:
		return "datasieve"
	case MethodList:
		return "list"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Options bundles per-method tuning for the unified entry points.
type Options struct {
	List  ListOptions
	Sieve SieveOptions
}

// accessFor maps the legacy Method enum to the Request vocabulary.
func accessFor(m Method) (AccessMethod, error) {
	switch m {
	case MethodMultiple:
		return AccessMultiple, nil
	case MethodSieve:
		return AccessSieve, nil
	case MethodList:
		return AccessList, nil
	default:
		return AccessAuto, fmt.Errorf("pvfs: unknown method %v", m)
	}
}

// ReadNoncontig dispatches a noncontiguous read to the chosen method
// (a wrapper over Start).
func (f *File) ReadNoncontig(m Method, arena []byte, mem, file ioseg.List, opts Options) error {
	am, err := accessFor(m)
	if err != nil {
		return err
	}
	_, err = f.Run(context.Background(), Request{
		Arena: arena, Mem: mem, File: file, Method: am,
		List: opts.List, Sieve: opts.Sieve,
	})
	return err
}

// WriteNoncontig dispatches a noncontiguous write to the chosen method
// (a wrapper over Start).
func (f *File) WriteNoncontig(m Method, arena []byte, mem, file ioseg.List, opts Options) error {
	am, err := accessFor(m)
	if err != nil {
		return err
	}
	_, err = f.Run(context.Background(), Request{
		Write: true, Arena: arena, Mem: mem, File: file, Method: am,
		List: opts.List, Sieve: opts.Sieve,
	})
	return err
}
