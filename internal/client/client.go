// Package client implements the PVFS client library: the code an
// application links against to open files and perform contiguous and
// noncontiguous I/O against the manager and I/O daemons.
//
// Three noncontiguous access methods are provided, matching §3 of the
// paper:
//
//   - Multiple I/O (§3.1): one contiguous PVFS request per file region.
//   - Data sieving I/O (§3.2): a client-side buffer covers many regions
//     per contiguous request; writes are read-modify-write.
//   - List I/O (§3.3): up to 64 file regions per request in trailing
//     data (ReadList/WriteList, the pvfs_read_list interface).
//
// A fourth, datatype I/O (ReadDatatype/WriteDatatype, with
// ReadStrided/WriteStrided as its uniform-vector special case),
// implements the paper's §5 future work: the access pattern itself
// crosses the wire as an encoded datatype and each I/O daemon
// evaluates its own share, removing the linear region-to-request
// relationship (DESIGN.md §6).
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pvfs/internal/ioseg"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

// PathCounters is the per-access-path accounting: wire requests
// issued and payload bytes moved through one noncontiguous method.
type PathCounters struct {
	Requests atomic.Int64
	Bytes    atomic.Int64
}

func (p *PathCounters) snapshot() PathValues {
	return PathValues{Requests: p.Requests.Load(), Bytes: p.Bytes.Load()}
}

// PathValues is a point-in-time copy of PathCounters.
type PathValues struct {
	Requests int64
	Bytes    int64
}

// Sub returns the delta p - o.
func (p PathValues) Sub(o PathValues) PathValues {
	return PathValues{Requests: p.Requests - o.Requests, Bytes: p.Bytes - o.Bytes}
}

// Counters tracks client-side request accounting, used by benchmarks
// and tests to verify the request arithmetic of the paper (§4.3.1:
// 983,040 vs 30 vs 1 requests per process). The per-path counters
// break the totals down by access method, so a trace replay or
// benchmark can show which datapath its requests took.
type Counters struct {
	Requests     atomic.Int64 // I/O requests sent to I/O daemons
	ListRequests atomic.Int64 // list I/O requests among Requests
	MgrRequests  atomic.Int64 // metadata requests to the manager
	BytesOut     atomic.Int64 // payload bytes sent (writes)
	BytesIn      atomic.Int64 // payload bytes received (reads)
	Retries      atomic.Int64 // transport-level retries (SetRetries)

	// Per-path accounting (DESIGN.md §6): multiple I/O (§3.1), data
	// sieving (§3.2), list I/O (§3.3), strided descriptors and full
	// datatype I/O (§5).
	Multiple PathCounters
	Sieve    PathCounters
	List     PathCounters
	Strided  PathCounters
	Datatype PathCounters
}

// Snapshot returns a plain-value copy of the counters.
func (c *Counters) Snapshot() CounterValues {
	return CounterValues{
		Requests:     c.Requests.Load(),
		ListRequests: c.ListRequests.Load(),
		MgrRequests:  c.MgrRequests.Load(),
		BytesOut:     c.BytesOut.Load(),
		BytesIn:      c.BytesIn.Load(),
		Retries:      c.Retries.Load(),
		Multiple:     c.Multiple.snapshot(),
		Sieve:        c.Sieve.snapshot(),
		List:         c.List.snapshot(),
		Strided:      c.Strided.snapshot(),
		Datatype:     c.Datatype.snapshot(),
	}
}

// CounterValues is a point-in-time copy of Counters.
type CounterValues struct {
	Requests     int64
	ListRequests int64
	MgrRequests  int64
	BytesOut     int64
	BytesIn      int64
	Retries      int64

	Multiple PathValues
	Sieve    PathValues
	List     PathValues
	Strided  PathValues
	Datatype PathValues
}

// Sub returns the delta v - o, the accounting of the work performed
// between two snapshots.
func (v CounterValues) Sub(o CounterValues) CounterValues {
	return CounterValues{
		Requests:     v.Requests - o.Requests,
		ListRequests: v.ListRequests - o.ListRequests,
		MgrRequests:  v.MgrRequests - o.MgrRequests,
		BytesOut:     v.BytesOut - o.BytesOut,
		BytesIn:      v.BytesIn - o.BytesIn,
		Retries:      v.Retries - o.Retries,
		Multiple:     v.Multiple.Sub(o.Multiple),
		Sieve:        v.Sieve.Sub(o.Sieve),
		List:         v.List.Sub(o.List),
		Strided:      v.Strided.Sub(o.Strided),
		Datatype:     v.Datatype.Sub(o.Datatype),
	}
}

// FS is a connection to a PVFS deployment: a metadata plane (a single
// manager, or replicated masters fronting hash-partitioned metadata
// shards — DESIGN.md §13) and N I/O daemons.
type FS struct {
	mgrAddr string
	mgr     *pvfsnet.Conn
	pool    *pvfsnet.Pool
	stats   Counters
	retry   atomic.Pointer[RetryPolicy]

	// smap caches the epoch-stamped shard map; nil until the first
	// metadata call fetches it. legacy marks a pre-shard-map server
	// (it answered the map query with a verdict error): all metadata
	// then flows over the classic manager connection.
	smap   atomic.Pointer[wire.ShardMap]
	legacy atomic.Bool
}

// Connect dials the manager.
func Connect(mgrAddr string) (*FS, error) {
	return ConnectContext(context.Background(), mgrAddr)
}

// ConnectContext dials the manager, honoring the context's deadline
// and cancellation for the TCP connect.
func ConnectContext(ctx context.Context, mgrAddr string) (*FS, error) {
	c, err := pvfsnet.DialContext(ctx, mgrAddr)
	if err != nil {
		return nil, err
	}
	return &FS{mgrAddr: mgrAddr, mgr: c, pool: pvfsnet.NewPool()}, nil
}

// RetryPolicy bounds transparent retry of I/O daemon calls that fail
// in a retry-safe way: transport-level failures (broken or
// unreachable connection) and StatusUnavailable answers from a
// draining daemon. Server verdicts on the request itself (bad
// geometry, missing handle) are never retried, and neither are
// context cancellations or per-call deadlines.
//
// Replay is safe by request identity: every PVFS data operation
// addresses absolute physical offsets, so re-issuing the identical
// request is idempotent — a read returns the same bytes, a write
// re-applies the same image. Partially-acked pipelined windows are
// re-driven per tag: only the requests whose responses never arrived
// are re-issued (DESIGN.md §9).
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retry (the original PVFS behaviour — a died daemon fails the job).
	Max int
	// Backoff is the delay before the first retry, doubling on each
	// subsequent one; 0 retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the doubling; 0 means uncapped.
	MaxBackoff time.Duration
}

// delay returns the backoff before the i-th retry (1-based).
func (p RetryPolicy) delay(i int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	shift := i - 1
	if shift > 20 { // 2^20× the base is past any sane MaxBackoff
		shift = 20
	}
	d := p.Backoff << shift
	if d <= 0 || (p.MaxBackoff > 0 && d > p.MaxBackoff) {
		d = p.MaxBackoff
		if d <= 0 {
			d = p.Backoff
		}
	}
	return d
}

// sleep blocks for the i-th retry's backoff, honoring ctx.
func (p RetryPolicy) sleep(ctx context.Context, i int) error {
	d := p.delay(i)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RetryError is the typed exhaustion error: the retry policy ran out
// of attempts against one daemon address. Err holds the final
// attempt's failure; errors.Is/As reach through it.
type RetryError struct {
	Addr     string
	Attempts int
	Err      error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("pvfs: %s still failing after %d attempts: %v", e.Addr, e.Attempts, e.Err)
}

func (e *RetryError) Unwrap() error { return e.Err }

// ctxKey keys request-scoped knobs carried through the datapath.
type ctxKey int

// callTimeoutKey carries Request.CallTimeout: a deadline applied to
// each individual wire call rather than the whole operation.
const callTimeoutKey ctxKey = iota

// retryPolicyKey carries Request.Retry: a per-operation retry policy
// overriding the FS-wide default for the calls it spans.
const retryPolicyKey ctxKey = iota + 1

// withCallTimeout attaches a per-wire-call deadline to ctx; d <= 0 is
// a no-op.
func withCallTimeout(ctx context.Context, d time.Duration) context.Context {
	if d <= 0 {
		return ctx
	}
	return context.WithValue(ctx, callTimeoutKey, d)
}

// callCtx derives the context governing one wire call: the operation
// context bounded by the per-call timeout, when one is set. The
// returned cancel must always be called.
func callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if d, ok := ctx.Value(callTimeoutKey).(time.Duration); ok && d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// ctxFailed reports whether err is a context cancellation or deadline
// error — failures the datapath must not retry and must not blame on
// the connection (the pooled connection stays healthy; only the
// affected tags are abandoned).
func ctxFailed(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Counters exposes the client request accounting.
func (fs *FS) Counters() *Counters { return &fs.stats }

// SetRetries enables transparent retry of I/O daemon calls that fail
// in a retry-safe way, attempting each call up to 1+n times with no
// backoff — shorthand for SetRetryPolicy(RetryPolicy{Max: n}). The
// original PVFS client had no retry — a died daemon failed the job —
// so the default is 0; deployments that restart daemons in place (see
// internal/fsck, cluster.RestartIOD and the recovery tests) turn it
// on. All PVFS data operations are idempotent (absolute offsets), so
// retrying a possibly-applied write is safe.
func (fs *FS) SetRetries(n int) {
	fs.SetRetryPolicy(RetryPolicy{Max: n})
}

// SetRetryPolicy installs the FS-wide default retry policy; a
// Request.Retry overrides it per operation.
func (fs *FS) SetRetryPolicy(p RetryPolicy) {
	if p.Max < 0 {
		p.Max = 0
	}
	fs.retry.Store(&p)
}

// retryPolicy resolves the policy governing calls under ctx: the
// per-request override when one rode in, the FS default otherwise.
func (fs *FS) retryPolicy(ctx context.Context) RetryPolicy {
	if p, ok := ctx.Value(retryPolicyKey).(RetryPolicy); ok {
		return p
	}
	if p := fs.retry.Load(); p != nil {
		return *p
	}
	return RetryPolicy{}
}

// withRetryPolicy attaches a per-operation retry policy to ctx.
func withRetryPolicy(ctx context.Context, p *RetryPolicy) context.Context {
	if p == nil {
		return ctx
	}
	q := *p
	if q.Max < 0 {
		q.Max = 0
	}
	return context.WithValue(ctx, retryPolicyKey, q)
}

// SetConnWrap installs a raw-connection wrapper on the I/O daemon
// connection pool: every subsequently dialed connection passes through
// it before the tagged transport takes over. Fault-injection harnesses
// (internal/faultnet) use it to run a client over a scripted faulty
// wire; nil removes the hook.
func (fs *FS) SetConnWrap(w func(net.Conn) net.Conn) { fs.pool.SetConnWrap(w) }

// iodCall issues one request on the pooled connection for addr,
// redialing and retrying per the governing RetryPolicy on retry-safe
// failures: transport errors (broken or unreachable connection, which
// also evict the pooled connection) and StatusUnavailable answers
// (the daemon is draining; the connection stays). Other
// server-reported errors are verdicts and fail immediately. Context
// failures — the operation's cancellation or the per-call deadline of
// withCallTimeout — are never retried and never discard the
// connection: the call's tag is abandoned, every other tag on the
// connection proceeds. When the policy is exhausted the last failure
// is wrapped in *RetryError.
func (fs *FS) iodCall(ctx context.Context, addr string, msg wire.Message) (wire.Message, error) {
	pol := fs.retryPolicy(ctx)
	attempts := 1 + pol.Max
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return wire.Message{}, err
		}
		if i > 0 {
			fs.stats.Retries.Add(1)
			if err := pol.sleep(ctx, i); err != nil {
				return wire.Message{}, err
			}
		}
		conn, err := fs.pool.GetContext(ctx, addr)
		if err != nil {
			if ctxFailed(err) {
				return wire.Message{}, err
			}
			lastErr = err
			continue
		}
		cctx, cancel := callCtx(ctx)
		resp, err := conn.CallContext(cctx, msg)
		cancel()
		if err == nil {
			return resp, nil
		}
		var se *wire.StatusError
		if errors.As(err, &se) {
			if se.Status.Retryable() {
				lastErr = err // the daemon asked for a retry; the connection is fine
				continue
			}
			return resp, err // the server answered with a verdict; retrying cannot help
		}
		if ctxFailed(err) {
			return wire.Message{}, err // canceled/timed out; the connection is fine
		}
		fs.pool.Discard(addr)
		lastErr = err
	}
	if attempts > 1 {
		lastErr = &RetryError{Addr: addr, Attempts: attempts, Err: lastErr}
	}
	return wire.Message{}, lastErr
}

// Close releases all connections.
func (fs *FS) Close() error {
	err := fs.mgr.Close()
	if perr := fs.pool.Close(); err == nil {
		err = perr
	}
	return err
}

func (fs *FS) mgrCall(ctx context.Context, t wire.MsgType, handle uint64, body []byte) (wire.Message, error) {
	fs.stats.MgrRequests.Add(1)
	return fs.mgr.CallContext(ctx, wire.Message{Header: wire.Header{Type: t, Handle: handle}, Body: body})
}

// shardMap returns the deployment's shard map, fetching and caching it
// on first use. A nil, nil return means the server predates the shard
// map query (legacy single-manager mode).
func (fs *FS) shardMap(ctx context.Context) (*wire.ShardMap, error) {
	if m := fs.smap.Load(); m != nil {
		return m, nil
	}
	if fs.legacy.Load() {
		return nil, nil
	}
	resp, err := fs.iodCall(ctx, fs.mgrAddr, wire.Message{Header: wire.Header{Type: wire.TShardMap}})
	if err != nil {
		var se *wire.StatusError
		if errors.As(err, &se) && !se.Status.Retryable() {
			// A verdict (Invalid on old servers): no shard map here,
			// route everything over the classic manager connection.
			resp.Release()
			fs.legacy.Store(true)
			return nil, nil
		}
		return nil, err
	}
	m := new(wire.ShardMap)
	uerr := m.Unmarshal(resp.Body)
	resp.Release()
	if uerr != nil {
		return nil, uerr
	}
	fs.installMap(m)
	return fs.smap.Load(), nil
}

// installMap adopts a shard map observed on the wire, keeping the
// freshest epoch under concurrent installs.
func (fs *FS) installMap(m *wire.ShardMap) {
	for {
		cur := fs.smap.Load()
		if cur != nil && cur.Epoch >= m.Epoch {
			return
		}
		if fs.smap.CompareAndSwap(cur, m) {
			return
		}
	}
}

// metaCall routes one metadata request to the shard pick selects,
// wrapped in the epoch-stamped TMetaForward envelope. StatusWrongEpoch
// answers are absorbed here: the response body carries the shard's
// current map, which is installed and the request re-routed — user
// code never sees the epoch protocol. Legacy servers get the plain
// manager grammar over the manager connection.
func (fs *FS) metaCall(ctx context.Context, t wire.MsgType, handle uint64, body []byte, pick func(*wire.ShardMap) int) (wire.Message, error) {
	m, err := fs.shardMap(ctx)
	if err != nil {
		return wire.Message{}, err
	}
	if m == nil {
		return fs.mgrCall(ctx, t, handle, body)
	}
	fs.stats.MgrRequests.Add(1)
	const maxReroutes = 5
	for attempt := 0; ; attempt++ {
		env := wire.MetaEnvelope{Epoch: m.Epoch, Inner: t, Body: body}
		resp, err := fs.iodCall(ctx, m.Shards[pick(m)], wire.Message{
			Header: wire.Header{Type: wire.TMetaForward, Handle: handle},
			Body:   env.Marshal(),
		})
		if err != nil {
			var se *wire.StatusError
			if errors.As(err, &se) && se.Status == wire.StatusWrongEpoch && attempt < maxReroutes {
				// The shard knows a different epoch and sent its map
				// along; adopt it and re-route.
				nm := new(wire.ShardMap)
				uerr := nm.Unmarshal(resp.Body)
				resp.Release()
				if uerr != nil {
					return wire.Message{}, uerr
				}
				fs.installMap(nm)
				if cur := fs.smap.Load(); cur != nil {
					m = cur
				} else {
					m = nm
				}
				continue
			}
		}
		return resp, err
	}
}

// metaByName routes a name-addressed metadata request.
func (fs *FS) metaByName(ctx context.Context, t wire.MsgType, name string, body []byte) (wire.Message, error) {
	return fs.metaCall(ctx, t, 0, body, func(m *wire.ShardMap) int {
		return m.ShardForName(name)
	})
}

// metaByHandle routes a handle-addressed metadata request.
func (fs *FS) metaByHandle(ctx context.Context, t wire.MsgType, handle uint64, body []byte) (wire.Message, error) {
	return fs.metaCall(ctx, t, handle, body, func(m *wire.ShardMap) int {
		return m.ShardForHandle(handle)
	})
}

// Create creates a file with the given striping (zero values select
// manager defaults) and opens it.
func (fs *FS) Create(name string, cfg striping.Config) (*File, error) {
	return fs.CreateContext(context.Background(), name, cfg)
}

// createToken returns a fresh non-zero idempotency token for one
// logical create call. Retries of the call re-send the same token, so
// the metadata plane can tell "this client's earlier attempt
// committed but the ack was lost" (re-acked OK) from "someone else
// owns the name" (Exists).
func createToken() uint64 {
	for {
		if t := rand.Uint64(); t != 0 {
			return t
		}
	}
}

// CreateContext is Create under a context: the metadata round trip to
// the manager aborts when ctx ends.
func (fs *FS) CreateContext(ctx context.Context, name string, cfg striping.Config) (*File, error) {
	req := wire.CreateReq{Name: name, Striping: cfg, Token: createToken()}
	resp, err := fs.metaByName(ctx, wire.TCreate, name, req.Marshal())
	if err != nil {
		return nil, fmt.Errorf("create %q: %w", name, err)
	}
	defer resp.Release()
	return fs.fileFromInfo(name, resp.Body)
}

// Open opens an existing file.
func (fs *FS) Open(name string) (*File, error) {
	return fs.OpenContext(context.Background(), name)
}

// OpenContext is Open under a context.
func (fs *FS) OpenContext(ctx context.Context, name string) (*File, error) {
	req := wire.NameReq{Name: name}
	resp, err := fs.metaByName(ctx, wire.TOpen, name, req.Marshal())
	if err != nil {
		return nil, fmt.Errorf("open %q: %w", name, err)
	}
	defer resp.Release()
	return fs.fileFromInfo(name, resp.Body)
}

func (fs *FS) fileFromInfo(name string, body []byte) (*File, error) {
	var info wire.FileInfo
	if err := info.Unmarshal(body); err != nil {
		return nil, err
	}
	if err := info.Striping.Validate(); err != nil {
		return nil, err
	}
	if len(info.IODAddrs) != info.Striping.PCount {
		return nil, fmt.Errorf("pvfs: manager returned %d iods for pcount %d",
			len(info.IODAddrs), info.Striping.PCount)
	}
	return &File{fs: fs, name: name, info: info}, nil
}

// Remove deletes a file: stripe data at every I/O daemon, then the
// manager metadata.
func (fs *FS) Remove(name string) error {
	ctx := context.Background()
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	for _, addr := range f.info.IODAddrs {
		conn, err := fs.pool.GetContext(ctx, addr)
		if err != nil {
			return err
		}
		resp, err := conn.CallContext(ctx, wire.Message{Header: wire.Header{Type: wire.TRemove, Handle: f.info.Handle}})
		if err != nil {
			return fmt.Errorf("remove %q at %s: %w", name, addr, err)
		}
		resp.Release()
	}
	req := wire.NameReq{Name: name}
	resp, err := fs.metaByName(ctx, wire.TRemove, name, req.Marshal())
	if err != nil {
		return err
	}
	resp.Release()
	return nil
}

// List returns all file names known to the metadata plane. Under a
// sharded deployment every shard lists its own partition and the
// results are merged; the combined listing is sorted like the classic
// manager's.
func (fs *FS) List() ([]string, error) {
	ctx := context.Background()
	m, err := fs.shardMap(ctx)
	if err != nil {
		return nil, err
	}
	if m == nil {
		resp, err := fs.mgrCall(ctx, wire.TListDir, 0, nil)
		if err != nil {
			return nil, err
		}
		defer resp.Release()
		var ld wire.ListDirResp
		if err := ld.Unmarshal(resp.Body); err != nil {
			return nil, err
		}
		return ld.Names, nil
	}
	var names []string
	for shard := range m.Shards {
		shard := shard
		resp, err := fs.metaCall(ctx, wire.TListDir, 0, nil, func(*wire.ShardMap) int { return shard })
		if err != nil {
			return nil, err
		}
		var ld wire.ListDirResp
		uerr := ld.Unmarshal(resp.Body)
		resp.Release()
		if uerr != nil {
			return nil, uerr
		}
		names = append(names, ld.Names...)
	}
	sort.Strings(names)
	return names, nil
}

// StatHandle fetches a file's metadata by handle, routed to the shard
// that owns the handle. fsck uses it to re-verify a suspected orphan
// against the live namespace before deleting stripe data (a sharded
// listing is not atomic across shards). Legacy servers answer
// NotFound for handle-addressed stats.
func (fs *FS) StatHandle(ctx context.Context, handle uint64) (wire.FileInfo, error) {
	var nr wire.NameReq
	resp, err := fs.metaByHandle(ctx, wire.TStat, handle, nr.Marshal())
	if err != nil {
		return wire.FileInfo{}, err
	}
	defer resp.Release()
	var info wire.FileInfo
	if err := info.Unmarshal(resp.Body); err != nil {
		return wire.FileInfo{}, err
	}
	return info, nil
}

// MetaStats sums request accounting across the metadata plane: every
// shard plus every master replica that answers. Dead replicas are
// skipped (their counters are gone with them).
func (fs *FS) MetaStats(ctx context.Context) (wire.ServerStats, error) {
	var total wire.ServerStats
	m, err := fs.shardMap(ctx)
	if err != nil {
		return total, err
	}
	query := wire.Message{Header: wire.Header{Type: wire.TServerStats}}
	if m == nil {
		resp, err := fs.mgr.CallContext(ctx, query)
		if err != nil {
			return total, err
		}
		uerr := total.Unmarshal(resp.Body)
		resp.Release()
		return total, uerr
	}
	addrs := append(append([]string(nil), m.Shards...), m.Masters...)
	seen := make(map[string]bool, len(addrs))
	for _, addr := range addrs {
		if seen[addr] {
			continue
		}
		seen[addr] = true
		resp, err := fs.iodCall(ctx, addr, query)
		if err != nil {
			continue
		}
		var st wire.ServerStats
		uerr := st.Unmarshal(resp.Body)
		resp.Release()
		if uerr == nil {
			total.Add(st)
		}
	}
	return total, nil
}

// ServerStats fetches request accounting from every I/O daemon serving
// file f, summed, plus the per-server breakdown.
func (fs *FS) ServerStats(f *File) (wire.ServerStats, []wire.ServerStats, error) {
	ctx := context.Background()
	per := make([]wire.ServerStats, len(f.info.IODAddrs))
	var total wire.ServerStats
	for i, addr := range f.info.IODAddrs {
		conn, err := fs.pool.GetContext(ctx, addr)
		if err != nil {
			return total, per, err
		}
		resp, err := conn.CallContext(ctx, wire.Message{Header: wire.Header{Type: wire.TServerStats}})
		if err != nil {
			return total, per, err
		}
		uerr := per[i].Unmarshal(resp.Body)
		resp.Release()
		if uerr != nil {
			return total, per, uerr
		}
		total.Add(per[i])
	}
	return total, per, nil
}

// File is an open PVFS file.
type File struct {
	fs   *FS
	name string
	info wire.FileInfo

	mu         sync.Mutex
	maxWritten int64
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Handle returns the manager-assigned handle.
func (f *File) Handle() uint64 { return f.info.Handle }

// Striping returns the file's striping configuration.
func (f *File) Striping() striping.Config { return f.info.Striping }

// Servers returns the addresses of the I/O daemons holding the file's
// stripes, in stripe order.
func (f *File) Servers() []string { return append([]string(nil), f.info.IODAddrs...) }

// RecordedSize returns the logical size the manager recorded at the
// last Close. The authoritative size comes from Size(), which asks the
// I/O daemons; the two can disagree when a writer crashed before
// closing (see internal/fsck).
func (f *File) RecordedSize() int64 { return f.info.Size }

// call issues one request to relative server rel, honoring the FS
// retry policy.
func (f *File) call(ctx context.Context, rel int, msg wire.Message) (wire.Message, error) {
	return f.fs.iodCall(ctx, f.info.IODAddrs[rel], msg)
}

// Size queries every I/O daemon for its stripe size and derives the
// logical file size, as PVFS does (the manager does not see I/O).
func (f *File) Size() (int64, error) {
	return f.size(context.Background())
}

func (f *File) size(ctx context.Context) (int64, error) {
	phys := make([]int64, f.info.Striping.PCount)
	for rel := range phys {
		resp, err := f.call(ctx, rel, wire.Message{Header: wire.Header{Type: wire.TStat, Handle: f.info.Handle}})
		if err != nil {
			return 0, err
		}
		var sr wire.SizeResp
		uerr := sr.Unmarshal(resp.Body)
		resp.Release()
		if uerr != nil {
			return 0, uerr
		}
		phys[rel] = sr.Size
	}
	return f.info.Striping.FileSizeFromStripes(phys), nil
}

// Sync asks every I/O daemon serving the file to flush its cached
// dirty blocks for this handle down to durable storage (TSync).
// Daemons running without a write-back cache acknowledge immediately,
// so Sync is always safe to call. On return, every write that
// completed before the call survives a daemon crash (DESIGN.md §7).
func (f *File) Sync() error {
	return f.SyncContext(context.Background())
}

// SyncContext is Sync under a context; canceling it abandons the
// outstanding flush round trips (daemons still complete them).
func (f *File) SyncContext(ctx context.Context) error {
	rels := make([]int, f.info.Striping.PCount)
	for i := range rels {
		rels[i] = i
	}
	return parallel(rels, func(rel int) error {
		resp, err := f.call(ctx, rel, wire.Message{
			Header: wire.Header{Type: wire.TSync, Handle: f.info.Handle},
		})
		if err != nil {
			return err
		}
		resp.Release()
		return nil
	})
}

// Close flushes the daemons' cached dirty blocks for the file
// (flush-on-close), reports the logical high-water mark to the
// manager and releases the handle. Pooled connections stay open for
// other files. If the file was only read, no sync round trip is made.
func (f *File) Close() error {
	return f.CloseContext(context.Background())
}

// CloseContext is Close under a context. A canceled close leaves the
// handle usable: the size report is skipped, not half-applied.
func (f *File) CloseContext(ctx context.Context) error {
	f.mu.Lock()
	hw := f.maxWritten
	f.mu.Unlock()
	if hw > 0 {
		if err := f.SyncContext(ctx); err != nil {
			return err
		}
		req := wire.SetSizeReq{Handle: f.info.Handle, Size: hw}
		resp, err := f.fs.metaByHandle(ctx, wire.TSetSize, f.info.Handle, req.Marshal())
		if err != nil {
			return err
		}
		resp.Release()
	}
	return nil
}

func (f *File) noteWritten(end int64) {
	f.mu.Lock()
	if end > f.maxWritten {
		f.maxWritten = end
	}
	f.mu.Unlock()
}

// serverJob is the per-server slice of one logical operation: physical
// regions in logical order plus the stream positions their bytes map to.
type serverJob struct {
	rel        int
	phys       ioseg.List
	streamPos  []int64 // stream offset of each region's first byte
	totalBytes int64
}

// buildJobs splits logical file regions across servers, tracking each
// piece's position in the packed stream (file-list order).
func (f *File) buildJobs(file ioseg.List) []*serverJob {
	cfg := f.info.Striping
	jobs := make(map[int]*serverJob)
	var stream int64
	for _, s := range file {
		for _, p := range cfg.Split(s) {
			j := jobs[p.Server]
			if j == nil {
				j = &serverJob{rel: p.Server}
				jobs[p.Server] = j
			}
			j.phys = append(j.phys, p.Phys)
			j.streamPos = append(j.streamPos, stream+(p.Logical.Offset-s.Offset))
			j.totalBytes += p.Phys.Length
		}
		stream += s.Length
	}
	out := make([]*serverJob, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].rel < out[k].rel })
	return out
}

// parallel runs fn for every job in its own goroutine (one per server,
// as the PVFS library fans out) and returns the first error.
func parallel[T any](jobs []T, fn func(T) error) error {
	if len(jobs) == 1 {
		return fn(jobs[0])
	}
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		go func(j T) { errs <- fn(j) }(j)
	}
	var first error
	for range jobs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pipelineCalls issues n requests against the daemon at addr, keeping
// up to window of them in flight on the pooled connection (the tagged
// pipelining of pvfsnet.CallAsync). build constructs request i on
// demand — so at most window request bodies are live at once — and
// consume handles response i; responses are consumed in issue order
// except when a transport failure forces a serial re-issue. window <= 1
// reproduces the original serialized call-per-round-trip behaviour,
// including its retry semantics.
//
// Transport failures on the pipelined path are retried serially through
// iodCall when the FS retry policy (SetRetries) allows; server-reported
// errors always fail immediately. Request bodies are returned to the
// wire buffer pool once the final attempt for them completes.
//
// Cancellation (ctx or the per-call deadline of withCallTimeout) fails
// the operation without poisoning the connection: every in-flight tag
// is abandoned — the read loop discards and recycles its eventual
// response — and the pooled connection stays usable for other tags.
func (fs *FS) pipelineCalls(ctx context.Context, addr string, n, window int, build func(int) (wire.Message, error), consume func(int, wire.Message) error) error {
	if n == 0 {
		return nil
	}
	pol := fs.retryPolicy(ctx)
	if window <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			msg, err := build(i)
			if err != nil {
				return err
			}
			resp, err := fs.iodCall(ctx, addr, msg)
			wire.PutBuf(msg.Body)
			if err != nil {
				return err
			}
			if err := consume(i, resp); err != nil {
				return err
			}
		}
		return nil
	}
	type slot struct {
		i   int
		msg wire.Message
		pc  *pvfsnet.Pending
	}
	var q []slot // in-flight, issue order
	// On any error return, abandon what is still in flight so tags are
	// discarded cleanly and pooled request bodies come back.
	defer func() {
		for _, s := range q {
			s.pc.Abandon()
			wire.PutBuf(s.msg.Body)
		}
	}()
	issue := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		msg, err := build(i)
		if err != nil {
			return err
		}
		conn, cerr := fs.pool.GetContext(ctx, addr)
		var pc *pvfsnet.Pending
		if cerr == nil {
			pc, cerr = conn.CallAsync(msg)
		}
		if cerr != nil {
			if ctxFailed(cerr) {
				wire.PutBuf(msg.Body)
				return cerr
			}
			// The connection is unusable before a response was even
			// owed. Recover serially when retries are enabled (the
			// whole window may have failed with it; each request
			// re-issues independently and Pool.Get dedups the redial).
			if pol.Max == 0 {
				wire.PutBuf(msg.Body)
				return cerr
			}
			fs.stats.Retries.Add(1)
			fs.pool.Discard(addr)
			resp, rerr := fs.iodCall(ctx, addr, msg)
			wire.PutBuf(msg.Body)
			if rerr != nil {
				return rerr
			}
			return consume(i, resp)
		}
		q = append(q, slot{i: i, msg: msg, pc: pc})
		return nil
	}
	drainOne := func() error {
		s := q[0]
		q = q[1:]
		cctx, cancel := callCtx(ctx)
		resp, err := s.pc.WaitContext(cctx)
		cancel()
		if err != nil {
			var se *wire.StatusError
			answered := errors.As(err, &se)
			switch {
			case answered && !se.Status.Retryable():
				// The server answered with a verdict; retrying cannot
				// help.
			case ctxFailed(err):
				// Canceled or per-call deadline: the tag is already
				// abandoned; fail the operation, keep the connection.
			case pol.Max > 0:
				// Per-tag re-drive: only this slot's request is
				// re-issued; acked requests in the window stay applied
				// (idempotent replay, DESIGN.md §9). A StatusUnavailable
				// answer keeps the healthy connection; a transport
				// failure evicts it first.
				fs.stats.Retries.Add(1)
				if !answered {
					fs.pool.Discard(addr)
				}
				resp, err = fs.iodCall(ctx, addr, s.msg)
			}
			if err != nil {
				wire.PutBuf(s.msg.Body)
				return err
			}
		}
		wire.PutBuf(s.msg.Body)
		return consume(s.i, resp)
	}
	next := 0
	for next < n || len(q) > 0 {
		for next < n && len(q) < window {
			if err := issue(next); err != nil {
				return err
			}
			next++
		}
		if len(q) > 0 {
			if err := drainOne(); err != nil {
				return err
			}
		}
	}
	return nil
}

// readContig reads one contiguous logical extent into p (a single PVFS
// read: one request per touched server, issued in parallel). A non-nil
// path attributes the wire traffic to a per-method counter.
func (f *File) readContig(ctx context.Context, p []byte, off int64, path *PathCounters) error {
	if len(p) == 0 {
		return nil
	}
	jobs := f.buildJobs(ioseg.List{{Offset: off, Length: int64(len(p))}})
	return parallel(jobs, func(j *serverJob) error {
		// A contiguous logical extent is a contiguous physical extent
		// on each server; issue one read and scatter the pieces.
		span, _ := j.phys.Span()
		req := wire.ReadReq{Offset: span.Offset, Length: span.Length}
		f.fs.stats.Requests.Add(1)
		if path != nil {
			path.Requests.Add(1)
			path.Bytes.Add(span.Length)
		}
		resp, err := f.call(ctx, j.rel, wire.Message{
			Header: wire.Header{Type: wire.TRead, Handle: f.info.Handle},
			Body:   req.Marshal(),
		})
		if err != nil {
			return err
		}
		defer resp.Release()
		if int64(len(resp.Body)) != span.Length {
			return fmt.Errorf("pvfs: short read from server %d: %d of %d", j.rel, len(resp.Body), span.Length)
		}
		f.fs.stats.BytesIn.Add(span.Length)
		for i, ph := range j.phys {
			copy(p[j.streamPos[i]:j.streamPos[i]+ph.Length], resp.Body[ph.Offset-span.Offset:])
		}
		return nil
	})
}

// writeContig writes one contiguous logical extent from p.
func (f *File) writeContig(ctx context.Context, p []byte, off int64, path *PathCounters) error {
	if len(p) == 0 {
		return nil
	}
	jobs := f.buildJobs(ioseg.List{{Offset: off, Length: int64(len(p))}})
	err := parallel(jobs, func(j *serverJob) error {
		span, _ := j.phys.Span()
		data := make([]byte, span.Length)
		for i, ph := range j.phys {
			copy(data[ph.Offset-span.Offset:], p[j.streamPos[i]:j.streamPos[i]+ph.Length])
		}
		req := wire.WriteReq{Offset: span.Offset, Data: data}
		f.fs.stats.Requests.Add(1)
		f.fs.stats.BytesOut.Add(span.Length)
		if path != nil {
			path.Requests.Add(1)
			path.Bytes.Add(span.Length)
		}
		resp, err := f.call(ctx, j.rel, wire.Message{
			Header: wire.Header{Type: wire.TWrite, Handle: f.info.Handle},
			Body:   req.Marshal(),
		})
		if err != nil {
			return err
		}
		// The WrittenResp body rides a pooled buffer even though the
		// payload is advisory; dropping it leaked one buffer per daemon
		// per WriteAt until pvfs/bufown grew a discard check.
		resp.Release()
		return nil
	})
	if err == nil {
		f.noteWritten(off + int64(len(p)))
	}
	return err
}

// ReadAt implements contiguous reads (io.ReaderAt semantics against
// the logical file; holes read as zeros). It is a synchronous wrapper
// over Start with a contiguous Request.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pvfs: negative offset")
	}
	_, err := f.Run(context.Background(), Request{
		Arena: p,
		File:  ioseg.List{{Offset: off, Length: int64(len(p))}},
		Mem:   ioseg.List{{Offset: 0, Length: int64(len(p))}},
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteAt implements contiguous writes (a synchronous wrapper over
// Start with a contiguous write Request).
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("pvfs: negative offset")
	}
	_, err := f.Run(context.Background(), Request{
		Write: true,
		Arena: p,
		File:  ioseg.List{{Offset: off, Length: int64(len(p))}},
		Mem:   ioseg.List{{Offset: 0, Length: int64(len(p))}},
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// Truncate sets the logical file size: each stripe file is cut to the
// physical size implied by the logical size.
func (f *File) Truncate(size int64) error {
	ctx := context.Background()
	cfg := f.info.Striping
	for rel := 0; rel < cfg.PCount; rel++ {
		phys := cfg.PhysPrefix(rel, size)
		req := wire.TruncateReq{Size: phys}
		resp, err := f.call(ctx, rel, wire.Message{
			Header: wire.Header{Type: wire.TTruncate, Handle: f.info.Handle},
			Body:   req.Marshal(),
		})
		if err != nil {
			return err
		}
		resp.Release()
	}
	f.mu.Lock()
	f.maxWritten = size
	f.mu.Unlock()
	return nil
}
