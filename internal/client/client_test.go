package client_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/ioseg"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

// startCluster brings up an in-process deployment and a connected FS.
func startCluster(t *testing.T, numIOD int) (*cluster.Cluster, *client.FS) {
	t.Helper()
	c, err := cluster.Start(cluster.Options{NumIOD: numIOD})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return c, fs
}

func TestCreateOpenRemove(t *testing.T) {
	_, fs := startCluster(t, 4)
	f, err := fs.Create("a.dat", striping.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Striping().PCount != 4 || f.Striping().StripeSize != striping.DefaultStripeSize {
		t.Fatalf("striping defaults: %+v", f.Striping())
	}
	if _, err := fs.Create("a.dat", striping.Config{}); err == nil {
		t.Fatal("duplicate create accepted")
	}
	g, err := fs.Open("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if g.Handle() != f.Handle() {
		t.Fatalf("handles differ: %d %d", g.Handle(), f.Handle())
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a.dat" {
		t.Fatalf("List = %v", names)
	}
	if err := fs.Remove("a.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a.dat"); err == nil {
		t.Fatal("open after remove succeeded")
	}
}

func TestContigWriteReadAcrossStripes(t *testing.T) {
	_, fs := startCluster(t, 4)
	f, err := fs.Create("stripes.dat", striping.Config{PCount: 4, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Data spanning several stripe cycles with an unaligned offset.
	data := make([]byte, 128*4*3+77)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := f.WriteAt(data, 33); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 33); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back differs")
	}
	// Hole before offset 33 reads as zeros.
	head := make([]byte, 33)
	if _, err := f.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, make([]byte, 33)) {
		t.Fatal("hole not zero")
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(33 + len(data)); size != want {
		t.Fatalf("Size = %d, want %d", size, want)
	}
}

func TestSizePropagatesToManagerOnClose(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("sz.dat", striping.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 1000); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh open sees the manager-recorded logical size.
	g, err := fs.Open("sz.dat")
	if err != nil {
		t.Fatal(err)
	}
	size, err := g.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 1005 {
		t.Fatalf("size = %d, want 1005", size)
	}
}

func TestTruncate(t *testing.T) {
	_, fs := startCluster(t, 3)
	f, err := fs.Create("t.dat", striping.Config{PCount: 3, StripeSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(550); err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 550 {
		t.Fatalf("size after truncate = %d, want 550", size)
	}
	// Bytes past the cut read as zeros; bytes before survive.
	got := make([]byte, 1000)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:550], data[:550]) {
		t.Fatal("data before truncation damaged")
	}
	if !bytes.Equal(got[550:], make([]byte, 450)) {
		t.Fatal("data after truncation not zeroed")
	}
}

// refFile is an in-memory reference the noncontiguous methods are
// checked against.
type refFile struct{ data []byte }

func (r *refFile) writeList(arena []byte, mem, file ioseg.List) {
	var stream []byte
	for _, s := range mem {
		stream = append(stream, arena[s.Offset:s.End()]...)
	}
	var pos int64
	for _, s := range file {
		if need := s.End(); need > int64(len(r.data)) {
			nd := make([]byte, need)
			copy(nd, r.data)
			r.data = nd
		}
		copy(r.data[s.Offset:s.End()], stream[pos:pos+s.Length])
		pos += s.Length
	}
}

func (r *refFile) readList(arena []byte, mem, file ioseg.List) {
	var stream []byte
	for _, s := range file {
		chunk := make([]byte, s.Length)
		if s.Offset < int64(len(r.data)) {
			copy(chunk, r.data[s.Offset:])
		}
		stream = append(stream, chunk...)
	}
	var pos int64
	for _, s := range mem {
		copy(arena[s.Offset:s.End()], stream[pos:pos+s.Length])
		pos += s.Length
	}
}

// randomRegions builds a random non-overlapping file list and a
// matching memory list over an arena of the given size.
func randomRegions(r *rand.Rand, arenaSize int) (mem, file ioseg.List) {
	var filePos, memPos int64
	for memPos < int64(arenaSize)-200 && len(file) < 30 {
		n := int64(1 + r.Intn(150))
		if memPos+n > int64(arenaSize) {
			break
		}
		file = append(file, ioseg.Segment{Offset: filePos, Length: n})
		mem = append(mem, ioseg.Segment{Offset: memPos, Length: n})
		filePos += n + int64(r.Intn(500))
		memPos += n + int64(r.Intn(20))
	}
	return mem, file
}

func TestNoncontiguousMethodsAgainstReference(t *testing.T) {
	methods := []client.Method{client.MethodMultiple, client.MethodSieve, client.MethodList}
	granularities := []client.Granularity{client.GranularityFileRegions, client.GranularityIntersect}
	_, fs := startCluster(t, 4)
	r := rand.New(rand.NewSource(99))

	for _, m := range methods {
		for _, g := range granularities {
			if m != client.MethodList && g != client.GranularityFileRegions {
				continue // granularity only affects list I/O
			}
			name := fmt.Sprintf("%v-%v", m, g)
			t.Run(name, func(t *testing.T) {
				f, err := fs.Create("nc-"+name, striping.Config{PCount: 4, StripeSize: 64})
				if err != nil {
					t.Fatal(err)
				}
				ref := &refFile{}
				opts := client.Options{
					List:  client.ListOptions{Granularity: g},
					Sieve: client.SieveOptions{BufferSize: 256}, // tiny buffer: many windows
				}
				for round := 0; round < 5; round++ {
					arena := make([]byte, 4096)
					r.Read(arena)
					mem, file := randomRegions(r, len(arena))
					if err := f.WriteNoncontig(m, arena, mem, file, opts); err != nil {
						t.Fatalf("write round %d: %v", round, err)
					}
					ref.writeList(arena, mem, file)

					// Read back with the same method and independently
					// with plain contiguous reads.
					got := make([]byte, len(arena))
					want := make([]byte, len(arena))
					if err := f.ReadNoncontig(m, got, mem, file, opts); err != nil {
						t.Fatalf("read round %d: %v", round, err)
					}
					ref.readList(want, mem, file)
					if !bytes.Equal(got, want) {
						t.Fatalf("round %d: %v read disagrees with reference", round, m)
					}
				}
				// Full-file check against the reference image.
				size, err := f.Size()
				if err != nil {
					t.Fatal(err)
				}
				if size != int64(len(ref.data)) {
					t.Fatalf("size = %d, ref = %d", size, len(ref.data))
				}
				whole := make([]byte, size)
				if _, err := f.ReadAt(whole, 0); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(whole, ref.data) {
					t.Fatalf("file image diverges from reference")
				}
			})
		}
	}
}

func TestMethodsProduceIdenticalFiles(t *testing.T) {
	// Every method writing the same pattern must produce byte-identical
	// files — the cross-method equivalence invariant.
	_, fs := startCluster(t, 4)
	r := rand.New(rand.NewSource(5))
	arena := make([]byte, 8192)
	r.Read(arena)
	mem, file := randomRegions(r, len(arena))

	images := map[string][]byte{}
	for _, m := range []client.Method{client.MethodMultiple, client.MethodSieve, client.MethodList} {
		f, err := fs.Create("eq-"+m.String(), striping.Config{PCount: 4, StripeSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteNoncontig(m, arena, mem, file, client.Options{
			Sieve: client.SieveOptions{BufferSize: 512},
		}); err != nil {
			t.Fatal(err)
		}
		size, err := f.Size()
		if err != nil {
			t.Fatal(err)
		}
		img := make([]byte, size)
		if _, err := f.ReadAt(img, 0); err != nil {
			t.Fatal(err)
		}
		images[m.String()] = img
	}
	if !bytes.Equal(images["multiple"], images["list"]) {
		t.Fatal("multiple and list images differ")
	}
	if !bytes.Equal(images["multiple"], images["datasieve"]) {
		t.Fatal("multiple and datasieve images differ")
	}
}

func TestListRequestBatching(t *testing.T) {
	// 130 single-server regions must produce ceil(130/64) = 3 list
	// requests — the trailing-data limit arithmetic from §3.3.
	c, fs := startCluster(t, 1)
	f, err := fs.Create("batch.dat", striping.Config{PCount: 1, StripeSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var mem, file ioseg.List
	arena := make([]byte, 130)
	for i := int64(0); i < 130; i++ {
		mem = append(mem, ioseg.Segment{Offset: i, Length: 1})
		file = append(file, ioseg.Segment{Offset: i * 10, Length: 1})
	}
	before := fs.Counters().Snapshot()
	if err := f.WriteList(arena, mem, file, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	after := fs.Counters().Snapshot()
	if got := after.ListRequests - before.ListRequests; got != 3 {
		t.Fatalf("list requests = %d, want 3", got)
	}
	stats := c.TotalStats()
	if stats.ListRequests != 3 || stats.Regions != 130 {
		t.Fatalf("server stats = %+v", stats)
	}
}

func TestListGranularityChangesRequestCount(t *testing.T) {
	// 256 8-byte memory pieces against 4 512-byte file regions:
	// file granularity → 4 entries → 1 request;
	// intersect granularity → 256 entries → 4 requests.
	_, fs := startCluster(t, 1)
	f, err := fs.Create("gran.dat", striping.Config{PCount: 1, StripeSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]byte, 256*16)
	var mem, file ioseg.List
	for i := int64(0); i < 256; i++ {
		mem = append(mem, ioseg.Segment{Offset: i * 16, Length: 8})
	}
	for i := int64(0); i < 4; i++ {
		file = append(file, ioseg.Segment{Offset: i * 4096, Length: 512})
	}

	before := fs.Counters().Snapshot()
	if err := f.WriteList(arena, mem, file, client.ListOptions{Granularity: client.GranularityFileRegions}); err != nil {
		t.Fatal(err)
	}
	mid := fs.Counters().Snapshot()
	if got := mid.ListRequests - before.ListRequests; got != 1 {
		t.Fatalf("file-granularity requests = %d, want 1", got)
	}
	if err := f.WriteList(arena, mem, file, client.ListOptions{Granularity: client.GranularityIntersect}); err != nil {
		t.Fatal(err)
	}
	after := fs.Counters().Snapshot()
	if got := after.ListRequests - mid.ListRequests; got != 4 {
		t.Fatalf("intersect-granularity requests = %d, want 4", got)
	}
}

func TestStridedMatchesList(t *testing.T) {
	_, fs := startCluster(t, 4)
	f, err := fs.Create("strided.dat", striping.Config{PCount: 4, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	const (
		start    = 40
		stride   = 100
		blockLen = 24
		count    = 50
	)
	arena := make([]byte, blockLen*count)
	rand.New(rand.NewSource(3)).Read(arena)
	mem := ioseg.List{{Offset: 0, Length: int64(len(arena))}}

	before := fs.Counters().Snapshot()
	if err := f.WriteStrided(arena, mem, start, stride, blockLen, count); err != nil {
		t.Fatal(err)
	}
	after := fs.Counters().Snapshot()
	// One descriptor request per touched server, not per region.
	if got := after.Requests - before.Requests; got > 4 {
		t.Fatalf("strided write used %d requests, want <= 4", got)
	}

	// Read back via list I/O and compare.
	var file ioseg.List
	for i := int64(0); i < count; i++ {
		file = append(file, ioseg.Segment{Offset: start + i*stride, Length: blockLen})
	}
	got := make([]byte, len(arena))
	if err := f.ReadList(got, mem, file, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, arena) {
		t.Fatal("strided write / list read mismatch")
	}

	// And read back via strided descriptor.
	got2 := make([]byte, len(arena))
	if err := f.ReadStrided(got2, mem, start, stride, blockLen, count); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, arena) {
		t.Fatal("strided read mismatch")
	}
}

func TestSieveStatsAccounting(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("sievestats.dat", striping.Config{PCount: 2, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Regions of 10 bytes every 100: sieve fetches the whole span.
	var mem, file ioseg.List
	for i := int64(0); i < 10; i++ {
		mem = append(mem, ioseg.Segment{Offset: i * 10, Length: 10})
		file = append(file, ioseg.Segment{Offset: i * 100, Length: 10})
	}
	arena := make([]byte, 100)
	st, err := f.ReadSieve(arena, mem, file, client.SieveOptions{BufferSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 1 {
		t.Fatalf("windows = %d, want 1", st.Windows)
	}
	if st.BytesUseful != 100 {
		t.Fatalf("useful = %d, want 100", st.BytesUseful)
	}
	if st.BytesAccessed != 910 { // span [0, 910)
		t.Fatalf("accessed = %d, want 910", st.BytesAccessed)
	}
	if uf := st.UselessFraction(); uf < 0.88 || uf > 0.90 {
		t.Fatalf("useless fraction = %f", uf)
	}
}

func TestSieveWriteReadModifyWrite(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("rmw.dat", striping.Config{PCount: 2, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill the file, then sieve-write sparse regions: untouched
	// bytes must survive the read-modify-write.
	base := bytes.Repeat([]byte{0x11}, 1000)
	if _, err := f.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	var mem, file ioseg.List
	for i := int64(0); i < 5; i++ {
		mem = append(mem, ioseg.Segment{Offset: i * 10, Length: 10})
		file = append(file, ioseg.Segment{Offset: 100 + i*150, Length: 10})
	}
	arena := bytes.Repeat([]byte{0xEE}, 50)
	if _, err := f.WriteSieve(arena, mem, file, client.SieveOptions{BufferSize: 300}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		want := byte(0x11)
		for j := int64(0); j < 5; j++ {
			if int64(i) >= 100+j*150 && int64(i) < 110+j*150 {
				want = 0xEE
			}
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestParallelClientsDisjointWrites(t *testing.T) {
	// N rank goroutines write a 1-D cyclic pattern concurrently; the
	// interleaved file must contain each rank's bytes.
	c, _ := startCluster(t, 4)
	const (
		ranks     = 4
		blockSize = 64
		blocks    = 16
	)
	fs0, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs0.Close()
	if _, err := fs0.Create("cyclic.dat", striping.Config{PCount: 4, StripeSize: 128}); err != nil {
		t.Fatal(err)
	}

	err = cluster.RunRanks(ranks, func(rank int) error {
		fs, err := c.Connect()
		if err != nil {
			return err
		}
		defer fs.Close()
		f, err := fs.Open("cyclic.dat")
		if err != nil {
			return err
		}
		arena := bytes.Repeat([]byte{byte('A' + rank)}, blockSize*blocks)
		var mem, file ioseg.List
		for b := int64(0); b < blocks; b++ {
			mem = append(mem, ioseg.Segment{Offset: b * blockSize, Length: blockSize})
			file = append(file, ioseg.Segment{Offset: (b*ranks + int64(rank)) * blockSize, Length: blockSize})
		}
		return f.WriteList(arena, mem, file, client.ListOptions{})
	})
	if err != nil {
		t.Fatal(err)
	}

	fsv, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fsv.Close()
	f, err := fsv.Open("cyclic.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, ranks*blocks*blockSize)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte('A' + (i/blockSize)%ranks)
		if b != want {
			t.Fatalf("byte %d = %c, want %c", i, b, want)
		}
	}
}

func TestServerStatsEndpoint(t *testing.T) {
	_, fs := startCluster(t, 3)
	f, err := fs.Create("st.dat", striping.Config{PCount: 3, StripeSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 500), 0); err != nil {
		t.Fatal(err)
	}
	total, per, err := fs.ServerStats(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 3 {
		t.Fatalf("per-server stats = %d entries", len(per))
	}
	if total.BytesWritten != 500 {
		t.Fatalf("total bytes written = %d, want 500", total.BytesWritten)
	}
}

func TestListRejectsMismatchedLists(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("bad.dat", striping.Config{})
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]byte, 100)
	mem := ioseg.List{{Offset: 0, Length: 10}}
	file := ioseg.List{{Offset: 0, Length: 20}}
	if err := f.ReadList(arena, mem, file, client.ListOptions{}); err == nil {
		t.Fatal("mismatched lists accepted")
	}
	// Memory region outside the arena.
	mem2 := ioseg.List{{Offset: 90, Length: 20}}
	file2 := ioseg.List{{Offset: 0, Length: 20}}
	if err := f.ReadList(arena, mem2, file2, client.ListOptions{}); err == nil {
		t.Fatal("out-of-arena memory accepted")
	}
}

func TestBarrier(t *testing.T) {
	b := cluster.NewBarrier(8)
	counter := make(chan int, 64)
	err := cluster.RunRanks(8, func(rank int) error {
		for round := 0; round < 4; round++ {
			counter <- round
			b.Wait()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(counter)
	// All rank entries for round k must appear before any for k+1 —
	// guaranteed by the barrier; verify counts per round.
	counts := map[int]int{}
	for v := range counter {
		counts[v]++
	}
	for round := 0; round < 4; round++ {
		if counts[round] != 8 {
			t.Fatalf("round %d count = %d", round, counts[round])
		}
	}
}

func TestWireLimitEnforcedByServer(t *testing.T) {
	// A hand-built list request with >64 regions must be rejected by
	// the I/O daemon with StatusTooManyRegions. (The client library
	// cannot produce one; we speak wire protocol directly.)
	c, _ := startCluster(t, 1)
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("limit.dat", striping.Config{PCount: 1, StripeSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	// EncodeRegions enforces the limit client-side, so craft the body
	// manually: count=65 then 65 descriptors.
	body := make([]byte, 4+65*16)
	body[3] = 65
	conn, err := pvfsnet.Dial(c.IODAddrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Call(wire.Message{
		Header: wire.Header{Type: wire.TReadList, Handle: f.Handle()},
		Body:   body,
	})
	if err == nil {
		t.Fatal("oversized trailing data accepted")
	}
	if resp.Status != wire.StatusTooManyRegions {
		t.Fatalf("status = %v, want StatusTooManyRegions", resp.Status)
	}
}
