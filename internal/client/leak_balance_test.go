package client_test

// End-to-end pooled-buffer accounting: a full metadata + I/O workout
// against an in-process cluster must leave wire.BufStats balanced.
// This pins the success-path leaks pvfs-lint (pvfs/bufown) found in
// Create/Open/List/Size/ServerStats — each dropped one manager or
// daemon response body per call before being fixed.

import (
	"testing"
	"time"

	"pvfs/internal/client"
	"pvfs/internal/ioseg"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

func TestClientOpsLeaveBufPoolBalanced(t *testing.T) {
	_, fs := startCluster(t, 2)
	gets0, puts0 := wire.BufStats()

	f, err := fs.Create("bal.dat", striping.Config{PCount: 2, StripeSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	segs := ioseg.List{{Offset: 0, Length: 512}}
	if err := f.ReadList(make([]byte, 512), segs, segs, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Size(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.ServerStats(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("bal.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.List(); err != nil {
		t.Fatal(err)
	}

	// Daemons recycle request bodies after responding; allow the tail
	// to drain before asserting the balance.
	deadline := time.Now().Add(2 * time.Second)
	for {
		gets, puts := wire.BufStats()
		if gets-gets0 == puts-puts0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled buffers leaked: %d gets vs %d puts since baseline",
				gets-gets0, puts-puts0)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
