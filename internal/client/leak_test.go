package client

// White-box regression tests pinning the pooled-buffer leaks pvfs-lint
// (pvfs/bufown) found on the client's error paths: a daemon response
// that fails validation — a short read — must still be released. Each
// test drives the private datapath against a fake daemon that returns
// a wrong-size body and asserts the wire.BufStats get/put balance.

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"pvfs/internal/ioseg"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

// startShortIOD serves every request with a deliberately short body.
func startShortIOD(t *testing.T) *pvfsnet.Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := pvfsnet.NewServer(ln, func(req wire.Message) wire.Message {
		return wire.Message{Body: []byte{0xbd}}
	}, nil)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// fakeFile builds an FS+File pair pointed at addr without a manager.
func fakeFile(addr string) *File {
	fs := &FS{pool: pvfsnet.NewPool()}
	return &File{
		fs: fs,
		info: wire.FileInfo{
			Handle:   7,
			IODAddrs: []string{addr},
			Striping: striping.Config{PCount: 1, StripeSize: 65536},
		},
	}
}

// requireBufBalance polls until the pool's get/put deltas converge
// (the server releases request bodies asynchronously after responding).
func requireBufBalance(t *testing.T, gets0, puts0 int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		gets, puts := wire.BufStats()
		if gets-gets0 == puts-puts0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled buffers leaked: %d gets vs %d puts since baseline",
				gets-gets0, puts-puts0)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReadContigShortResponseReleasesBody(t *testing.T) {
	srv := startShortIOD(t)
	f := fakeFile(srv.Addr())
	defer f.fs.pool.Close()
	gets0, puts0 := wire.BufStats()

	err := f.readContig(context.Background(), make([]byte, 64), 0, nil)
	if err == nil || !strings.Contains(err.Error(), "short read") {
		t.Fatalf("err = %v, want short read", err)
	}
	requireBufBalance(t, gets0, puts0)
}

func TestReadListShortResponseReleasesBody(t *testing.T) {
	srv := startShortIOD(t)
	f := fakeFile(srv.Addr())
	defer f.fs.pool.Close()
	gets0, puts0 := wire.BufStats()

	arena := make([]byte, 64)
	segs := ioseg.List{{Offset: 0, Length: 64}}
	err := f.readList(context.Background(), arena, segs, segs, ListOptions{})
	if err == nil || !strings.Contains(err.Error(), "list read returned") {
		t.Fatalf("err = %v, want short list read", err)
	}
	requireBufBalance(t, gets0, puts0)
}
