package client

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Sequential (POSIX-style) access. PVFS lets existing binaries operate
// on PVFS files without recompiling (§2); this is the Go equivalent:
// File exposes io.Reader / io.Writer / io.Seeker over the striped
// file, so standard-library code (io.Copy, bufio, etc.) works
// unchanged.

// seqState holds the cursor for the sequential interface. It is
// separate from File's immutable metadata so the *At methods stay
// position-free.
type seqState struct {
	mu  sync.Mutex
	pos int64
}

var seqCursors sync.Map // *File -> *seqState

func (f *File) seq() *seqState {
	if s, ok := seqCursors.Load(f); ok {
		return s.(*seqState)
	}
	s, _ := seqCursors.LoadOrStore(f, &seqState{})
	return s.(*seqState)
}

// Read implements io.Reader at the file cursor. Reads past the
// current logical size return io.EOF.
func (f *File) Read(p []byte) (int, error) {
	s := f.seq()
	s.mu.Lock()
	defer s.mu.Unlock()
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	if s.pos >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if s.pos+n > size {
		n = size - s.pos
	}
	if _, err := f.ReadAt(p[:n], s.pos); err != nil {
		return 0, err
	}
	s.pos += n
	var eof error
	if s.pos == size && n < int64(len(p)) {
		eof = io.EOF
	}
	return int(n), eof
}

// Write implements io.Writer at the file cursor.
func (f *File) Write(p []byte) (int, error) {
	s := f.seq()
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := f.WriteAt(p, s.pos)
	s.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	s := f.seq()
	s.mu.Lock()
	defer s.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = s.pos
	case io.SeekEnd:
		size, err := f.Size()
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, fmt.Errorf("pvfs: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, errors.New("pvfs: negative seek position")
	}
	s.pos = base + offset
	return s.pos, nil
}

// Tell returns the current cursor position.
func (f *File) Tell() int64 {
	s := f.seq()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos
}

// Interface checks.
var (
	_ io.Reader   = (*File)(nil)
	_ io.Writer   = (*File)(nil)
	_ io.Seeker   = (*File)(nil)
	_ io.ReaderAt = (*File)(nil)
	_ io.WriterAt = (*File)(nil)
)
