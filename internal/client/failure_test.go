package client_test

import (
	"strings"
	"testing"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/ioseg"
	"pvfs/internal/striping"
)

// Failure injection: daemons dying mid-session must surface as errors,
// never hangs or corrupted results.

func TestIODFailureSurfacesAsError(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("doomed.dat", striping.Config{PCount: 4, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1024)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	// Kill one I/O daemon; operations touching it must fail promptly.
	if err := c.IODs[2].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(data, 0); err == nil {
		t.Fatal("read spanning a dead iod succeeded")
	}
	var mem, file ioseg.List
	for i := int64(0); i < 16; i++ {
		mem = append(mem, ioseg.Segment{Offset: i * 8, Length: 8})
		file = append(file, ioseg.Segment{Offset: i * 64, Length: 8})
	}
	arena := make([]byte, 128)
	if err := f.ReadList(arena, mem, file, client.ListOptions{}); err == nil {
		t.Fatal("list read touching a dead iod succeeded")
	}
	if err := f.WriteMultiple(arena, mem, file); err == nil {
		t.Fatal("multiple write touching a dead iod succeeded")
	}
	// Operations confined to live servers still work: stripe 0 lives
	// on iod 0.
	small := make([]byte, 8)
	if _, err := f.ReadAt(small, 0); err != nil {
		t.Fatalf("read on live iod failed: %v", err)
	}
}

func TestManagerFailure(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("orphan.dat", striping.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mgr.Close(); err != nil {
		t.Fatal(err)
	}
	// Metadata operations fail...
	if _, err := fs.Open("orphan.dat"); err == nil {
		t.Fatal("open with dead manager succeeded")
	}
	if _, err := fs.Create("new.dat", striping.Config{}); err == nil {
		t.Fatal("create with dead manager succeeded")
	}
	// ...but data-path I/O continues (the PVFS property: the manager
	// does not participate in read/write, §2).
	data := []byte("still flowing")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write with dead manager failed: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read with dead manager failed: %v", err)
	}
	if string(got) != string(data) {
		t.Fatal("data corrupted")
	}
}

func TestConnectToNothing(t *testing.T) {
	if _, err := client.Connect("127.0.0.1:1"); err == nil {
		t.Fatal("connect to closed port succeeded")
	}
}

func TestOpenMissingFile(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	_, err = fs.Open("nope")
	if err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v, want not-found", err)
	}
	if err := fs.Remove("nope"); err == nil {
		t.Fatal("remove of missing file succeeded")
	}
}
