package client_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
)

// Tests for the datatype I/O datapath (DESIGN.md §6): the pattern
// crosses the wire as an encoded constructor tree, the daemons
// evaluate their own shares, and the client windows + pipelines the
// transfer. The equivalence contract is the acceptance bar: datatype
// read/write of any pattern must be byte-identical to ReadList/
// WriteList of the flattened pattern.

// fragmentedMem splits [0, total) into memory regions of the given
// size with gaps, exercising the StreamMap scatter/gather (the arena
// is sized to hold the gaps).
func fragmentedMem(total, piece, gap int64) (ioseg.List, int64) {
	var mem ioseg.List
	var off int64
	for covered := int64(0); covered < total; covered += piece {
		n := piece
		if r := total - covered; r < n {
			n = r
		}
		mem = append(mem, ioseg.Segment{Offset: off, Length: n})
		off += n + gap
	}
	return mem, off
}

// datatypeCases are the pattern shapes the tentpole names: vector,
// indexed, and 2-D subarray, plus a nested constructor for depth.
func datatypeCases(t *testing.T) map[string]struct {
	typ   datatype.Type
	base  int64
	count int64
} {
	t.Helper()
	idx, err := datatype.Indexed(
		[]int64{3, 1, 5, 2, 4},
		[]int64{0, 7, 11, 20, 26},
		datatype.Double(),
	)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := datatype.Subarray(
		[]int64{24, 40}, // full 2-D array
		[]int64{9, 13},  // sub-block
		[]int64{5, 17},  // start corner
		datatype.Bytes(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]struct {
		typ   datatype.Type
		base  int64
		count int64
	}{
		"vector":   {datatype.Vector(37, 24, 100, datatype.Bytes(1)), 40, 3},
		"indexed":  {idx, 128, 5},
		"subarray": {sub, 64, 2},
		"nested":   {datatype.Contiguous(4, datatype.Vector(6, 2, 5, datatype.Bytes(9))), 10, 7},
	}
}

func TestDatatypeEquivalenceWithList(t *testing.T) {
	_, fs := startCluster(t, 4)
	cfg := striping.Config{PCount: 4, StripeSize: 256}
	for name, tc := range datatypeCases(t) {
		t.Run(name, func(t *testing.T) {
			dataLen, _, err := datatype.CheckPattern(tc.typ, tc.base, tc.count)
			if err != nil {
				t.Fatal(err)
			}
			// Flatten the repeated pattern for the list-I/O reference.
			var file ioseg.List
			ext := tc.typ.Extent()
			for i := int64(0); i < tc.count; i++ {
				file = tc.typ.AppendRegions(file, tc.base+i*ext)
			}
			file = file.Normalize()

			mem, arenaLen := fragmentedMem(dataLen, 47, 9)
			arena := make([]byte, arenaLen)
			rand.New(rand.NewSource(11)).Read(arena)

			// Small windows + pipelining so one transfer exercises many
			// concurrent in-flight requests (meaningful under -race).
			opts := client.DatatypeOptions{WindowBytes: 96, Window: 4}

			fDT, err := fs.Create("dt-"+name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := fDT.WriteDatatype(arena, mem, tc.typ, tc.base, tc.count, opts); err != nil {
				t.Fatal(err)
			}
			fDT.Close()
			fList, err := fs.Create("list-"+name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := fList.WriteList(arena, mem, file, client.ListOptions{}); err != nil {
				t.Fatal(err)
			}
			fList.Close()

			if a, b := fullImage(t, fs, "dt-"+name), fullImage(t, fs, "list-"+name); !bytes.Equal(a, b) {
				t.Fatal("datatype and list writes left different images")
			}

			// Read back through both paths from the list-written file.
			fr, err := fs.Open("list-" + name)
			if err != nil {
				t.Fatal(err)
			}
			defer fr.Close()
			gotDT := make([]byte, arenaLen)
			if err := fr.ReadDatatype(gotDT, mem, tc.typ, tc.base, tc.count, opts); err != nil {
				t.Fatal(err)
			}
			gotList := make([]byte, arenaLen)
			if err := fr.ReadList(gotList, mem, file, client.ListOptions{}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotDT, gotList) {
				t.Fatal("datatype and list reads differ")
			}
			for _, s := range mem {
				if !bytes.Equal(gotDT[s.Offset:s.End()], arena[s.Offset:s.End()]) {
					t.Fatalf("read-back differs from source in region %v", s)
				}
			}
		})
	}
}

// TestDatatypeWindowSerializedEquivalence pins the window discipline:
// serialized (Window=1) and deeply pipelined transfers with tiny
// window payloads must be byte-identical.
func TestDatatypeWindowSerializedEquivalence(t *testing.T) {
	_, fs := startCluster(t, 3)
	typ := datatype.Vector(500, 16, 48, datatype.Bytes(1))
	const base = 8
	dataLen, _, err := datatype.CheckPattern(typ, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]byte, dataLen)
	rand.New(rand.NewSource(5)).Read(arena)
	mem := ioseg.List{{Offset: 0, Length: dataLen}}
	for _, opts := range []client.DatatypeOptions{
		{WindowBytes: 64, Window: 1},
		{WindowBytes: 64, Window: 8},
		{},
	} {
		name := fmt.Sprintf("win%d-depth%d", opts.WindowBytes, opts.Window)
		f, err := fs.Create(name, striping.Config{PCount: 3, StripeSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteDatatype(arena, mem, typ, base, 1, opts); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		got := make([]byte, dataLen)
		if err := f.ReadDatatype(got, mem, typ, base, 1, opts); err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		if !bytes.Equal(got, arena) {
			t.Fatalf("%s round trip differs", name)
		}
		f.Close()
	}
	ref := fullImage(t, fs, "win64-depth1")
	for _, name := range []string{"win64-depth8", "win0-depth0"} {
		if !bytes.Equal(ref, fullImage(t, fs, name)) {
			t.Fatalf("image of %s differs from serialized reference", name)
		}
	}
}

// TestDatatypeRequestCountIndependentOfFragments is the acceptance
// criterion: a FLASH-like vector pattern with >=100k contiguous
// fragments completes in O(transfer size / window) wire requests per
// server — fragment count must not appear in the arithmetic — and
// matches list I/O byte-for-byte.
func TestDatatypeRequestCountIndependentOfFragments(t *testing.T) {
	if testing.Short() {
		t.Skip("120k-fragment pattern")
	}
	_, fs := startCluster(t, 4)
	// 120,000 fragments of 8 bytes every 32: the paper's FLASH shape
	// (8-byte doubles scattered in the file).
	const (
		frags    = 120_000
		fragLen  = 8
		stride   = 32
		winBytes = 64 << 10
	)
	typ := datatype.Vector(frags, fragLen, stride, datatype.Bytes(1))
	dataLen := int64(frags * fragLen)
	arena := make([]byte, dataLen)
	rand.New(rand.NewSource(9)).Read(arena)
	mem := ioseg.List{{Offset: 0, Length: dataLen}}
	opts := client.DatatypeOptions{WindowBytes: winBytes}

	f, err := fs.Create("flash.dat", striping.Config{PCount: 4, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	before := fs.Counters().Snapshot()
	if err := f.WriteDatatype(arena, mem, typ, 0, 1, opts); err != nil {
		t.Fatal(err)
	}
	mid := fs.Counters().Snapshot()
	got := make([]byte, dataLen)
	if err := f.ReadDatatype(got, mem, typ, 0, 1, opts); err != nil {
		t.Fatal(err)
	}
	after := fs.Counters().Snapshot()
	if !bytes.Equal(got, arena) {
		t.Fatal("datatype round trip differs")
	}

	// O(transfer/window): each server owns dataLen/4 bytes, so at most
	// ceil(dataLen/4/winBytes)+1 requests per server per direction.
	perServer := (dataLen/4+winBytes-1)/winBytes + 1
	bound := 4 * perServer
	if w := mid.Sub(before).Requests; w > bound {
		t.Fatalf("write used %d requests, want <= %d (fragment-independent)", w, bound)
	}
	if r := after.Sub(mid).Requests; r > bound {
		t.Fatalf("read used %d requests, want <= %d (fragment-independent)", r, bound)
	}
	// The same transfer via list I/O would need frags/64 requests;
	// make the contrast explicit.
	if listReqs := int64(frags / 64); bound*10 > listReqs {
		t.Fatalf("test misconfigured: datatype bound %d not clearly below list's %d", bound, listReqs)
	}

	// Byte-identical to list I/O of the flattened pattern.
	flat := datatype.Flatten(typ, 0)
	gotList := make([]byte, dataLen)
	if err := f.ReadList(gotList, mem, flat, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotList, arena) {
		t.Fatal("list read of flattened pattern differs")
	}
}

// TestDatatypeFaultInjectionRetries drives the datatype path through
// dropped connections with retries enabled: transfers must complete
// and stay byte-identical to list I/O.
func TestDatatypeFaultInjectionRetries(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.SetRetries(3)

	typ := datatype.Vector(300, 16, 40, datatype.Bytes(1))
	dataLen, _, err := datatype.CheckPattern(typ, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]byte, dataLen)
	rand.New(rand.NewSource(77)).Read(arena)
	mem := ioseg.List{{Offset: 0, Length: dataLen}}
	opts := client.DatatypeOptions{WindowBytes: 256, Window: 4}

	f, err := fs.Create("faulty.dat", striping.Config{PCount: 3, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	var faults pvfsnet.Faults
	c.IODs[1].Net().SetFaults(&faults)

	faults.DropConnections(2)
	if err := f.WriteDatatype(arena, mem, typ, 0, 2, opts); err != nil {
		t.Fatalf("write under drops: %v", err)
	}
	faults.DropConnections(2)
	got := make([]byte, dataLen)
	if err := f.ReadDatatype(got, mem, typ, 0, 2, opts); err != nil {
		t.Fatalf("read under drops: %v", err)
	}
	if !bytes.Equal(got, arena) {
		t.Fatal("round trip under fault injection differs")
	}
	if fs.Counters().Retries.Load() == 0 {
		t.Fatal("no retries recorded; fault injection did not engage")
	}

	// Reference: the image matches a clean list write of the same data.
	var file ioseg.List
	ext := typ.Extent()
	for i := int64(0); i < 2; i++ {
		file = typ.AppendRegions(file, i*ext)
	}
	fRef, err := fs.Create("ref.dat", striping.Config{PCount: 3, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := fRef.WriteList(arena, mem, file.Normalize(), client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	fRef.Close()
	if !bytes.Equal(fullImage(t, fs, "faulty.dat"), fullImage(t, fs, "ref.dat")) {
		t.Fatal("faulted datatype image differs from clean list image")
	}
}

// TestDatatypePathCounters checks the per-path accounting satellite:
// datatype traffic lands on the Datatype counters, strided wrappers on
// Strided, and neither pollutes the list path.
func TestDatatypePathCounters(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("ctr.dat", striping.Config{PCount: 2, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	typ := datatype.Vector(16, 8, 24, datatype.Bytes(1))
	arena := make([]byte, 128)
	mem := ioseg.List{{Offset: 0, Length: 128}}

	before := fs.Counters().Snapshot()
	if err := f.WriteDatatype(arena, mem, typ, 0, 1, client.DatatypeOptions{}); err != nil {
		t.Fatal(err)
	}
	d := fs.Counters().Snapshot().Sub(before)
	if d.Datatype.Requests == 0 || d.Datatype.Bytes != 128 {
		t.Fatalf("datatype path counters: %+v", d.Datatype)
	}
	if d.Strided.Requests != 0 || d.List.Requests != 0 {
		t.Fatalf("cross-path pollution: strided %+v list %+v", d.Strided, d.List)
	}

	before = fs.Counters().Snapshot()
	if err := f.WriteStrided(arena, mem, 0, 24, 8, 16); err != nil {
		t.Fatal(err)
	}
	d = fs.Counters().Snapshot().Sub(before)
	if d.Strided.Requests == 0 || d.Strided.Bytes != 128 {
		t.Fatalf("strided path counters: %+v", d.Strided)
	}
	if d.Datatype.Requests != 0 {
		t.Fatalf("strided polluted datatype path: %+v", d.Datatype)
	}
}

// TestDatatypeRejectsBadArguments pins client-side validation.
func TestDatatypeRejectsBadArguments(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("bad.dat", striping.Config{PCount: 2, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	typ := datatype.Vector(4, 8, 16, datatype.Bytes(1))
	arena := make([]byte, 32)
	if err := f.ReadDatatype(arena, ioseg.List{{Offset: 0, Length: 16}}, typ, 0, 1, client.DatatypeOptions{}); err == nil {
		t.Fatal("memory/pattern length mismatch accepted")
	}
	if err := f.ReadDatatype(arena, ioseg.List{{Offset: 0, Length: 32}}, typ, -8, 1, client.DatatypeOptions{}); err == nil {
		t.Fatal("negative base accepted")
	}
	if err := f.ReadDatatype(arena[:16], ioseg.List{{Offset: 0, Length: 32}}, typ, 0, 1, client.DatatypeOptions{}); err == nil {
		t.Fatal("memory region outside arena accepted")
	}
	if err := f.ReadDatatype(arena, ioseg.List{{Offset: 0, Length: 32}}, typ, 0, -1, client.DatatypeOptions{}); err == nil {
		t.Fatal("negative count accepted")
	}
}
