package client_test

import (
	"fmt"
	"testing"
	"time"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/ioseg"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
)

// Benchmarks for the pipelined list I/O datapath (DESIGN.md §2, §4).
//
// The latency benches inject a per-message service delay into every
// I/O daemon (pvfsnet.Faults.SetDelay), standing in for the network
// and disk time of a real deployment; Window=1 reproduces the original
// serialized client, larger windows overlap the delays. The alloc
// benches run without delay and report allocs/op for the zero-copy
// accounting in DESIGN.md §4.

// pipelinePattern builds a FLASH-like fragmented pattern: n small
// pieces, contiguous in memory every 64 bytes, scattered in the file
// every 256 bytes.
func pipelinePattern(n int64) (mem, file ioseg.List) {
	for i := int64(0); i < n; i++ {
		mem = append(mem, ioseg.Segment{Offset: i * 64, Length: 64})
		file = append(file, ioseg.Segment{Offset: i * 256, Length: 64})
	}
	return
}

// startListBench boots a 4-daemon cluster, optionally installing a
// per-message delay, and creates a striped file plus its pattern.
func startListBench(b *testing.B, delay time.Duration) (*client.File, ioseg.List, ioseg.List, func()) {
	b.Helper()
	c, err := cluster.Start(cluster.Options{NumIOD: 4})
	if err != nil {
		b.Fatal(err)
	}
	if delay > 0 {
		for _, iod := range c.IODs {
			var f pvfsnet.Faults
			f.SetDelay(delay)
			iod.Net().SetFaults(&f)
		}
	}
	fs, err := c.Connect()
	if err != nil {
		c.Close()
		b.Fatal(err)
	}
	f, err := fs.Create("bench.dat", striping.Config{PCount: 4, StripeSize: 4096})
	if err != nil {
		fs.Close()
		c.Close()
		b.Fatal(err)
	}
	mem, file := pipelinePattern(2048) // 32 batches of 64 entries
	return f, mem, file, func() {
		fs.Close()
		c.Close()
	}
}

// BenchmarkListLatencyWindow sweeps the in-flight window against a
// 200µs per-message service delay: the win of pipelining over the
// serialized (window=1) client is the ratio of the ns/op values.
func BenchmarkListLatencyWindow(b *testing.B) {
	for _, window := range []int{1, 2, 4, 8, 16} {
		for _, dir := range []string{"read", "write"} {
			b.Run(fmt.Sprintf("%s/window%d", dir, window), func(b *testing.B) {
				f, mem, file, cleanup := startListBench(b, 200*time.Microsecond)
				defer cleanup()
				arena := make([]byte, mem.TotalLength())
				opts := client.ListOptions{Window: window}
				if dir == "write" {
					b.SetBytes(mem.TotalLength())
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := f.WriteList(arena, mem, file, opts); err != nil {
							b.Fatal(err)
						}
					}
					return
				}
				if err := f.WriteList(arena, mem, file, opts); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(mem.TotalLength())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := f.ReadList(arena, mem, file, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkListAllocs measures steady-state allocation on the list
// datapath with no injected delay (loopback round trips only): the
// buffer pool and direct arena scatter/gather keep allocs/op flat in
// transfer size.
func BenchmarkListAllocs(b *testing.B) {
	for _, dir := range []string{"read", "write"} {
		b.Run(dir, func(b *testing.B) {
			f, mem, file, cleanup := startListBench(b, 0)
			defer cleanup()
			arena := make([]byte, mem.TotalLength())
			opts := client.ListOptions{}
			if err := f.WriteList(arena, mem, file, opts); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(mem.TotalLength())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if dir == "write" {
					err = f.WriteList(arena, mem, file, opts)
				} else {
					err = f.ReadList(arena, mem, file, opts)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
