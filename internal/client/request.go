package client

// The unified nonblocking I/O API. Every data operation — contiguous
// or noncontiguous, read or write, list or datatype or sieving — is
// one Request descriptor handed to File.Start, which returns an Op:
// a started, cancelable operation. The legacy Read*/Write* method
// matrix survives as thin synchronous wrappers over Start (request
// formation and counter accounting are unchanged), so the descriptor
// is the single point where memory layout, file layout, method
// selection and per-op tuning meet. MPI-IO's nonblocking operations
// (MPI_File_iread/iwrite) are the model: Start is the i-variant of
// the whole matrix at once.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
)

// AccessMethod selects the datapath a Request travels. The zero value
// (AccessAuto) picks for you: datatype layouts that survive the wire
// codec ship un-flattened (DESIGN.md §6), doubly-contiguous transfers
// take the plain contiguous path, everything else goes to list I/O —
// the paper's preferred method.
type AccessMethod int

const (
	// AccessAuto picks the datapath from the layout (see above).
	AccessAuto AccessMethod = iota
	// AccessContig is one contiguous request per touched server; the
	// layout must be a single memory region and a single file region.
	AccessContig
	// AccessMultiple is one contiguous request per doubly-contiguous
	// piece (§3.1).
	AccessMultiple
	// AccessSieve is data sieving I/O (§3.2); Result.Sieve reports the
	// data movement.
	AccessSieve
	// AccessList is list I/O (§3.3), the paper's contribution.
	AccessList
	// AccessDatatype ships the access pattern itself to the I/O
	// daemons (§5, DESIGN.md §6); the layout must be a datatype or
	// strided one.
	AccessDatatype
	// AccessHybrid coalesces nearby file regions (CoalesceGap) and
	// moves the coalesced extents with list I/O (§5).
	AccessHybrid
)

func (m AccessMethod) String() string {
	switch m {
	case AccessAuto:
		return "auto"
	case AccessContig:
		return "contig"
	case AccessMultiple:
		return "multiple"
	case AccessSieve:
		return "datasieve"
	case AccessList:
		return "list"
	case AccessDatatype:
		return "datatype"
	case AccessHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("access(%d)", int(m))
	}
}

// Strided is the vector-pattern shorthand layout: Count blocks of
// BlockLen bytes every Stride bytes, starting at file offset Start.
type Strided struct {
	Start    int64
	Stride   int64
	BlockLen int64
	Count    int64
}

// Request is the unified access descriptor: one value bundles the
// memory layout, the file layout, the method selection and the per-op
// tuning that used to be spread across the Read*/Write* method matrix.
//
// Memory layout: Arena is the user buffer; Mem lists the arena
// regions holding the transfer's bytes in stream order. A nil Mem
// means one region covering the transfer's size from arena offset 0.
//
// File layout — exactly one of:
//   - File: an explicit region list (the pvfs_read_list vocabulary);
//   - Type/Base/Count: Count repetitions of an MPI-style datatype at
//     byte offset Base (Count 0 means 1);
//   - Strided: the uniform-vector shorthand.
//
// The zero method (AccessAuto) routes encodable datatype layouts down
// the datatype path, single-region pairs down the contiguous path, and
// everything else to list I/O. Explicit methods that cannot express
// the given layout are errors, except that the flattened methods
// (multiple/sieve/list/hybrid) accept a datatype layout by flattening
// it client-side.
type Request struct {
	// Write selects direction: false reads into Arena, true writes
	// from it.
	Write bool

	// Arena is the user memory the transfer scatters into (reads) or
	// gathers from (writes).
	Arena []byte
	// Mem lists the arena regions of the transfer in stream order; nil
	// selects a single region [0, transfer size).
	Mem ioseg.List

	// File is the region-list file layout.
	File ioseg.List
	// Type/Base/Count is the datatype file layout.
	Type  datatype.Type
	Base  int64
	Count int64
	// Strided is the vector shorthand file layout.
	Strided *Strided

	// Method picks the datapath; the zero value auto-picks.
	Method AccessMethod

	// Per-method tuning (each applies only when its path is taken).
	List        ListOptions
	Sieve       SieveOptions
	Datatype    DatatypeOptions
	CoalesceGap int64 // hybrid coalescing gap, bytes

	// CallTimeout bounds each individual wire call of the operation
	// (not the operation as a whole): a daemon that stalls mid-call
	// fails that call with context.DeadlineExceeded instead of wedging
	// the operation forever, and only the affected tags are abandoned
	// — the pooled connection stays usable. 0 means no per-call bound.
	CallTimeout time.Duration

	// Retry overrides the FS-wide retry policy (FS.SetRetryPolicy)
	// for this operation's wire calls: bounded retries with
	// exponential backoff on retry-safe failures (transport errors,
	// StatusUnavailable), per-tag replay of unacked pipelined
	// requests, typed *RetryError on exhaustion. nil inherits the FS
	// default (DESIGN.md §9).
	Retry *RetryPolicy
}

// Result summarizes a completed operation.
type Result struct {
	// Method is the datapath the operation actually took (never
	// AccessAuto).
	Method AccessMethod
	// Bytes is the transfer's payload size: the bytes of the memory
	// layout moved between arena and file.
	Bytes int64
	// Sieve reports sieving data movement when Method is AccessSieve
	// or AccessHybrid (zero otherwise). On error it holds the movement
	// up to the failure.
	Sieve SieveStats
}

// Op is a started nonblocking operation. Exactly one goroutine should
// Wait; Done may be selected on by any number.
type Op struct {
	done chan struct{}
	res  Result
	err  error
}

// Done returns a channel closed when the operation completes (with or
// without error) — the select-friendly form of Wait.
func (o *Op) Done() <-chan struct{} { return o.done }

// Wait blocks until the operation completes and returns its Result
// and error. It may be called any number of times; all calls return
// the same values.
func (o *Op) Wait() (Result, error) {
	<-o.done
	return o.res, o.err
}

// Err returns nil while the operation runs, and its final error (or
// nil on success) once it completes.
func (o *Op) Err() error {
	select {
	case <-o.done:
		return o.err
	default:
		return nil
	}
}

// Start begins the operation described by req and returns immediately
// with an Op handle. The operation runs in its own goroutine against
// the tagged, pipelined transport, so several Ops on one file (or many
// files) overlap their round trips — MPI_File_iread/iwrite semantics.
//
// Cancellation: when ctx ends (cancel or deadline), the operation
// fails with the context error. In-flight wire calls abandon their
// tags — the I/O daemons still complete the requests they already
// received, and the read loop discards the late responses — so a
// canceled write may have applied any subset of its requests, but
// never a torn individual request, and the connection pool remains
// usable by other operations. See DESIGN.md §8.
func (f *File) Start(ctx context.Context, req Request) *Op {
	op := &Op{done: make(chan struct{})}
	go func() {
		defer close(op.done)
		op.res, op.err = f.exec(ctx, req)
	}()
	return op
}

// Run is the synchronous form of Start: start, wait, return.
func (f *File) Run(ctx context.Context, req Request) (Result, error) {
	return f.Start(ctx, req).Wait()
}

// resolved is the normalized form of a Request: one concrete layout
// and one concrete method.
type resolved struct {
	method  AccessMethod
	mem     ioseg.List
	file    ioseg.List    // region-list layout (nil for datatype path)
	t       datatype.Type // datatype layout (nil for region-list path)
	base    int64
	count   int64
	strided bool // pattern came from the Strided shorthand (counter attribution)
}

// resolve validates the descriptor and normalizes layout and method.
func (r Request) resolve() (resolved, error) {
	var out resolved

	// Exactly one file layout.
	layouts := 0
	if r.File != nil {
		layouts++
	}
	if r.Type != nil {
		layouts++
	}
	if r.Strided != nil {
		layouts++
	}
	if layouts > 1 {
		return out, fmt.Errorf("pvfs: request needs exactly one file layout (File, Type or Strided), got %d", layouts)
	}
	// No layout at all is the empty region list: a zero-byte transfer
	// (the legacy methods accepted nil lists as no-ops).

	switch {
	case r.Strided != nil:
		s := r.Strided
		t, err := stridedType(s.Stride, s.BlockLen, s.Count)
		if err != nil {
			return out, err
		}
		if s.Start < 0 {
			return out, errors.New("pvfs: negative strided start")
		}
		out.t, out.base, out.count, out.strided = t, s.Start, 1, true
	case r.Type != nil:
		out.t, out.base, out.count = r.Type, r.Base, r.Count
		if out.count == 0 {
			out.count = 1
		}
	default:
		out.file = r.File
	}

	// Transfer size, for defaulting Mem.
	var total int64
	if out.t != nil {
		if out.count < 0 {
			return out, fmt.Errorf("pvfs: negative datatype count %d", out.count)
		}
		total = out.t.Size() * out.count
	} else {
		var err error
		total, err = out.file.TotalLengthChecked()
		if err != nil {
			return out, fmt.Errorf("pvfs: file list: %w", err)
		}
	}
	out.mem = r.Mem
	if out.mem == nil && total > 0 {
		out.mem = ioseg.List{{Offset: 0, Length: total}}
	}

	// Method.
	out.method = r.Method
	if out.method == AccessAuto {
		switch {
		case out.t != nil && datatype.CanEncode(out.t) == nil && out.base >= 0:
			out.method = AccessDatatype
		case out.t != nil:
			out.method = AccessList
		case len(out.file) == 1 && len(out.mem) <= 1:
			out.method = AccessContig
		default:
			out.method = AccessList
		}
	}

	// Layout/method compatibility; flattened methods accept a datatype
	// layout by materializing its regions client-side.
	switch out.method {
	case AccessDatatype:
		if out.t == nil {
			return out, errors.New("pvfs: AccessDatatype requires a Type or Strided layout")
		}
		if err := datatype.CanEncode(out.t); err != nil {
			return out, fmt.Errorf("pvfs: datatype not encodable: %w", err)
		}
	case AccessContig, AccessMultiple, AccessSieve, AccessList, AccessHybrid:
		if out.t != nil {
			out.file = flattenRepeated(out.t, out.base, out.count)
			out.t = nil
		}
		if out.method == AccessContig && (len(out.file) != 1 || len(out.mem) > 1) {
			return out, fmt.Errorf("pvfs: AccessContig requires one memory and one file region, got %d/%d", len(out.mem), len(out.file))
		}
	default:
		return out, fmt.Errorf("pvfs: unknown access method %v", out.method)
	}
	return out, nil
}

// flattenRepeated materializes count repetitions of t at base as a
// region list (repetitions advance by the type's extent, as in MPI).
func flattenRepeated(t datatype.Type, base, count int64) ioseg.List {
	if count == 1 {
		return datatype.Flatten(t, base)
	}
	ext := t.Extent()
	var out ioseg.List
	for i := int64(0); i < count; i++ {
		out = append(out, datatype.Flatten(t, base+i*ext)...)
	}
	return out
}

// exec runs one resolved Request to completion under ctx.
func (f *File) exec(ctx context.Context, req Request) (Result, error) {
	rv, err := req.resolve()
	if err != nil {
		return Result{}, err
	}
	ctx = withCallTimeout(ctx, req.CallTimeout)
	ctx = withRetryPolicy(ctx, req.Retry)
	res := Result{Method: rv.method, Bytes: rv.mem.TotalLength()}

	if err := ctx.Err(); err != nil {
		return res, err // a canceled Start never touches the wire
	}

	switch rv.method {
	case AccessContig:
		if err := rv.file.Validate(); err != nil {
			return res, fmt.Errorf("pvfs: file list: %w", err)
		}
		off := rv.file[0].Offset
		var p []byte
		if len(rv.mem) == 1 {
			m := rv.mem[0]
			if err := m.Validate(); err != nil {
				return res, fmt.Errorf("pvfs: memory list: %w", err)
			}
			if m.End() > int64(len(req.Arena)) {
				return res, fmt.Errorf("pvfs: memory region %v outside buffer of %d bytes", m, len(req.Arena))
			}
			if m.Length != rv.file[0].Length {
				return res, fmt.Errorf("pvfs: memory list covers %d bytes, file list %d", m.Length, rv.file[0].Length)
			}
			p = req.Arena[m.Offset:m.End()]
		} else if rv.file[0].Length != 0 {
			return res, fmt.Errorf("pvfs: memory list covers 0 bytes, file list %d", rv.file[0].Length)
		}
		if req.Write {
			return res, f.writeContig(ctx, p, off, nil)
		}
		return res, f.readContig(ctx, p, off, nil)

	case AccessMultiple:
		if req.Write {
			return res, f.writeMultiple(ctx, req.Arena, rv.mem, rv.file)
		}
		return res, f.readMultiple(ctx, req.Arena, rv.mem, rv.file)

	case AccessSieve:
		if req.Write {
			res.Sieve, err = f.writeSieve(ctx, req.Arena, rv.mem, rv.file, req.Sieve)
		} else {
			res.Sieve, err = f.readSieve(ctx, req.Arena, rv.mem, rv.file, req.Sieve)
		}
		return res, err

	case AccessList:
		if req.Write {
			return res, f.writeList(ctx, req.Arena, rv.mem, rv.file, req.List)
		}
		return res, f.readList(ctx, req.Arena, rv.mem, rv.file, req.List)

	case AccessDatatype:
		path := &f.fs.stats.Datatype
		if rv.strided {
			path = &f.fs.stats.Strided
		}
		if req.Write {
			return res, f.writeDatatype(ctx, req.Arena, rv.mem, rv.t, rv.base, rv.count, req.Datatype, path)
		}
		return res, f.readDatatype(ctx, req.Arena, rv.mem, rv.t, rv.base, rv.count, req.Datatype, path)

	case AccessHybrid:
		if req.Write {
			res.Sieve, err = f.writeHybrid(ctx, req.Arena, rv.mem, rv.file, req.CoalesceGap, req.List)
		} else {
			res.Sieve, err = f.readHybrid(ctx, req.Arena, rv.mem, rv.file, req.CoalesceGap, req.List)
		}
		return res, err
	}
	return res, fmt.Errorf("pvfs: unknown access method %v", rv.method)
}
