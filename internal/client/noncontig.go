package client

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
	"pvfs/internal/memio"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

// Granularity selects how list I/O entries are built from the memory
// and file region lists (DESIGN.md §3).
type Granularity int

const (
	// GranularityFileRegions builds one entry per contiguous file
	// region, the minimal entry count (§4.3.1's "list I/O can reduce
	// the amount of I/O requests to 30 per processor").
	GranularityFileRegions Granularity = iota
	// GranularityIntersect builds one entry per (memory ∩ file) piece,
	// the max-fragmentation behaviour consistent with the paper's
	// measured FLASH results (983,040 entries per processor).
	GranularityIntersect
)

func (g Granularity) String() string {
	switch g {
	case GranularityFileRegions:
		return "file-regions"
	case GranularityIntersect:
		return "intersect"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// DefaultListWindow is the number of list requests kept in flight per
// server connection when ListOptions.Window is zero. Eight in-flight
// requests hide most of the per-round-trip latency on the batched list
// path while bounding client buffering to eight request bodies per
// server.
const DefaultListWindow = 8

// ListOptions tunes list I/O.
type ListOptions struct {
	// Granularity of entry construction; default GranularityFileRegions.
	Granularity Granularity
	// MaxRegions per request; 0 selects wire.MaxRegionsPerRequest (64).
	// Values above the wire limit are rejected by the protocol layer.
	MaxRegions int
	// Window is the number of list requests kept in flight per server
	// connection (the tagged pipelining of DESIGN.md §2). 0 selects
	// DefaultListWindow; 1 restores the original serialized behaviour
	// — one round trip at a time per server — which fault-injection
	// setups that assume serialized calls should keep.
	Window int
}

func (o ListOptions) maxRegions() int {
	if o.MaxRegions <= 0 {
		return wire.MaxRegionsPerRequest
	}
	return o.MaxRegions
}

func (o ListOptions) window() int {
	if o.Window <= 0 {
		return DefaultListWindow
	}
	return o.Window
}

// checkLists validates a mem/file pair. Cross-segment overlap is not
// checked (it would cost a sort of the 983k-entry FLASH lists per
// call): as with MPI receive buffers, memory regions that overlap one
// another make read results undefined — responses scatter into the
// arena concurrently, from one goroutine per server.
func checkLists(arena []byte, mem, file ioseg.List) error {
	if err := mem.Validate(); err != nil {
		return fmt.Errorf("pvfs: memory list: %w", err)
	}
	if err := file.Validate(); err != nil {
		return fmt.Errorf("pvfs: file list: %w", err)
	}
	if mem.TotalLength() != file.TotalLength() {
		return fmt.Errorf("pvfs: memory list covers %d bytes, file list %d",
			mem.TotalLength(), file.TotalLength())
	}
	for i, s := range mem {
		if s.End() > int64(len(arena)) {
			return fmt.Errorf("pvfs: memory region %d (%v) outside buffer of %d bytes", i, s, len(arena))
		}
	}
	return nil
}

// listEntries builds the file-space entry list in stream order for the
// chosen granularity.
func listEntries(mem, file ioseg.List, g Granularity) (ioseg.List, error) {
	if g == GranularityFileRegions {
		return file, nil
	}
	pairs, err := memio.Match(mem, file)
	if err != nil {
		return nil, err
	}
	entries := make(ioseg.List, len(pairs))
	for i, p := range pairs {
		entries[i] = p.File
	}
	return entries, nil
}

// --- multiple I/O (§3.1) ---

// ReadMultiple performs the noncontiguous read the traditional way:
// one contiguous PVFS request per piece that is contiguous in both
// memory and file, since the classic read interface takes one buffer
// pointer and one file offset per call. For FLASH-like patterns with
// 8-byte memory pieces this is the paper's 983,040 requests per
// process (§4.3.1). It is a synchronous wrapper over Start.
func (f *File) ReadMultiple(arena []byte, mem, file ioseg.List) error {
	_, err := f.Run(context.Background(), Request{
		Arena: arena, Mem: mem, File: file, Method: AccessMultiple,
	})
	return err
}

// WriteMultiple performs the noncontiguous write with one contiguous
// PVFS request per doubly-contiguous piece (a wrapper over Start).
func (f *File) WriteMultiple(arena []byte, mem, file ioseg.List) error {
	_, err := f.Run(context.Background(), Request{
		Write: true, Arena: arena, Mem: mem, File: file, Method: AccessMultiple,
	})
	return err
}

// readMultiple is the multiple-I/O datapath shared by Start and the
// legacy wrappers.
func (f *File) readMultiple(ctx context.Context, arena []byte, mem, file ioseg.List) error {
	if err := checkLists(arena, mem, file); err != nil {
		return err
	}
	pairs, err := memio.Match(mem, file)
	if err != nil {
		return err
	}
	for _, pr := range pairs {
		if err := f.readContig(ctx, arena[pr.Mem.Offset:pr.Mem.End()], pr.File.Offset, &f.fs.stats.Multiple); err != nil {
			return err
		}
	}
	return nil
}

func (f *File) writeMultiple(ctx context.Context, arena []byte, mem, file ioseg.List) error {
	if err := checkLists(arena, mem, file); err != nil {
		return err
	}
	pairs, err := memio.Match(mem, file)
	if err != nil {
		return err
	}
	for _, pr := range pairs {
		if err := f.writeContig(ctx, arena[pr.Mem.Offset:pr.Mem.End()], pr.File.Offset, &f.fs.stats.Multiple); err != nil {
			return err
		}
	}
	return nil
}

// --- list I/O (§3.3) ---

// subReq is one wire-level list request: the index range [lo, hi) into
// its planServer's piece arrays (at most MaxRegionsPerRequest regions).
type subReq struct {
	lo, hi int
	bytes  int64
}

// planServer is the ordered request schedule for one I/O server: the
// server's physical regions in logical order, the absolute stream
// position of each region's first byte, and the request boundaries.
// Pieces accumulate into two flat arrays rather than per-request
// slices, so planning allocates O(log n) times per server instead of
// O(requests).
type planServer struct {
	rel       int
	phys      ioseg.List
	streamPos []int64
	reqs      []subReq

	openLo    int   // first piece of the not-yet-cut request
	openBytes int64 // payload bytes accumulated since the last cut
}

// cut closes the open request, if it holds any pieces.
func (ps *planServer) cut() {
	if len(ps.phys) > ps.openLo {
		ps.reqs = append(ps.reqs, subReq{lo: ps.openLo, hi: len(ps.phys), bytes: ps.openBytes})
		ps.openLo = len(ps.phys)
		ps.openBytes = 0
	}
}

// planList turns the logical entry list into per-server request
// schedules. Request formation is exactly the paper's arithmetic — the
// entry list is cut into batches of at most maxRegions entries (§3.3),
// each batch splits across servers by striping, and a server's share of
// one batch is sub-batched defensively at the wire limit — so request
// counts are identical to the serialized implementation; only the issue
// discipline (pipelined vs barriered) differs.
func (f *File) planList(entries ioseg.List, maxRegions int) []*planServer {
	cfg := f.info.Striping
	byRel := make(map[int]*planServer)
	var plans []*planServer
	var stream int64
	batchLeft := maxRegions
	for _, s := range entries {
		if batchLeft == 0 { // batch boundary: no request spans it
			for _, ps := range plans {
				ps.cut()
			}
			batchLeft = maxRegions
		}
		batchLeft--
		entry := s
		cfg.SplitFunc(entry, func(p striping.Piece) {
			ps := byRel[p.Server]
			if ps == nil {
				ps = &planServer{rel: p.Server}
				byRel[p.Server] = ps
				plans = append(plans, ps)
			}
			if len(ps.phys)-ps.openLo == wire.MaxRegionsPerRequest {
				ps.cut()
			}
			ps.phys = append(ps.phys, p.Phys)
			ps.streamPos = append(ps.streamPos, stream+(p.Logical.Offset-entry.Offset))
			ps.openBytes += p.Phys.Length
		})
		stream += s.Length
	}
	for _, ps := range plans {
		ps.cut()
	}
	sort.Slice(plans, func(i, k int) bool { return plans[i].rel < plans[k].rel })
	return plans
}

// ReadList performs the noncontiguous read via list I/O. As in the
// paper (§3.3), a logical request describing more than 64 file regions
// is broken into several list requests of at most 64 entries and each
// list request fans out to the I/O servers holding its pieces in
// parallel. Unlike the paper's client, successive requests to one
// server are pipelined: up to ListOptions.Window requests ride the
// connection concurrently, and each response scatters straight into the
// caller's buffer by stream-position arithmetic — no staging copy of
// the full transfer is ever built. Memory regions must not overlap one
// another (as with MPI receive buffers): responses from different
// servers — and, when Window > 1, from one server — scatter into the
// arena concurrently, so overlapping destinations are undefined at any
// window.
func (f *File) ReadList(arena []byte, mem, file ioseg.List, opts ListOptions) error {
	_, err := f.Run(context.Background(), Request{
		Arena: arena, Mem: mem, File: file, Method: AccessList, List: opts,
	})
	return err
}

// readList is the list-I/O datapath shared by Start and the legacy
// wrappers (see ReadList for semantics).
func (f *File) readList(ctx context.Context, arena []byte, mem, file ioseg.List, opts ListOptions) error {
	if err := checkLists(arena, mem, file); err != nil {
		return err
	}
	entries, err := listEntries(mem, file, opts.Granularity)
	if err != nil {
		return err
	}
	smap := memio.NewStreamMap(mem)
	plans := f.planList(entries, opts.maxRegions())
	return parallel(plans, func(p *planServer) error {
		addr := f.info.IODAddrs[p.rel]
		return f.fs.pipelineCalls(ctx, addr, len(p.reqs), opts.window(),
			func(i int) (wire.Message, error) {
				r := &p.reqs[i]
				regions := p.phys[r.lo:r.hi]
				body, err := wire.AppendRegions(wire.GetBuf(wire.TrailingDataSize(len(regions)))[:0], regions)
				if err != nil {
					wire.PutBuf(body)
					return wire.Message{}, err
				}
				f.fs.stats.Requests.Add(1)
				f.fs.stats.ListRequests.Add(1)
				f.fs.stats.List.Requests.Add(1)
				return wire.Message{
					Header: wire.Header{Type: wire.TReadList, Handle: f.info.Handle},
					Body:   body,
				}, nil
			},
			func(i int, resp wire.Message) error {
				defer resp.Release()
				r := &p.reqs[i]
				if int64(len(resp.Body)) != r.bytes {
					return fmt.Errorf("pvfs: list read returned %d bytes, want %d", len(resp.Body), r.bytes)
				}
				f.fs.stats.BytesIn.Add(r.bytes)
				f.fs.stats.List.Bytes.Add(r.bytes)
				var rpos int64
				for k := r.lo; k < r.hi; k++ {
					n := p.phys[k].Length
					if err := smap.CopyIn(arena, p.streamPos[k], resp.Body[rpos:rpos+n]); err != nil {
						return err
					}
					rpos += n
				}
				return nil
			})
	})
}

// WriteList performs the noncontiguous write via list I/O, with the
// same global 64-entry batching and per-server pipelining as ReadList.
// Each request's payload is gathered directly from the caller's buffer
// into the pooled request body — the serialized implementation's
// full-size staging stream and per-request data copies are gone. File
// regions must not overlap one another when Window > 1 (requests to one
// server may be applied concurrently).
func (f *File) WriteList(arena []byte, mem, file ioseg.List, opts ListOptions) error {
	_, err := f.Run(context.Background(), Request{
		Write: true, Arena: arena, Mem: mem, File: file, Method: AccessList, List: opts,
	})
	return err
}

// writeList is the list-I/O write datapath shared by Start and the
// legacy wrappers (see WriteList for semantics).
func (f *File) writeList(ctx context.Context, arena []byte, mem, file ioseg.List, opts ListOptions) error {
	if err := checkLists(arena, mem, file); err != nil {
		return err
	}
	entries, err := listEntries(mem, file, opts.Granularity)
	if err != nil {
		return err
	}
	smap := memio.NewStreamMap(mem)
	plans := f.planList(entries, opts.maxRegions())
	err = parallel(plans, func(p *planServer) error {
		addr := f.info.IODAddrs[p.rel]
		return f.fs.pipelineCalls(ctx, addr, len(p.reqs), opts.window(),
			func(i int) (wire.Message, error) {
				r := &p.reqs[i]
				regions := p.phys[r.lo:r.hi]
				size := wire.TrailingDataSize(len(regions)) + int(r.bytes)
				body, err := wire.AppendRegions(wire.GetBuf(size)[:0], regions)
				if err != nil {
					wire.PutBuf(body)
					return wire.Message{}, err
				}
				for k := r.lo; k < r.hi; k++ {
					body, err = smap.AppendOut(body, arena, p.streamPos[k], p.phys[k].Length)
					if err != nil {
						wire.PutBuf(body)
						return wire.Message{}, err
					}
				}
				f.fs.stats.Requests.Add(1)
				f.fs.stats.ListRequests.Add(1)
				f.fs.stats.List.Requests.Add(1)
				f.fs.stats.List.Bytes.Add(r.bytes)
				f.fs.stats.BytesOut.Add(r.bytes)
				return wire.Message{
					Header: wire.Header{Type: wire.TWriteList, Handle: f.info.Handle},
					Body:   body,
				}, nil
			},
			func(i int, resp wire.Message) error {
				resp.Release()
				return nil
			})
	})
	if err != nil {
		return err
	}
	if span, ok := file.Span(); ok {
		f.noteWritten(span.End())
	}
	return nil
}

// --- strided descriptors (§5 future work) ---

// ReadStrided reads a vector pattern (count blocks of blockLen every
// stride bytes from start). It is a thin layer over the datatype
// datapath — the pattern ships as Vector(count, blockLen, stride,
// bytes(1)) and each I/O daemon evaluates its own share — so requests
// per server scale with transfer size over the response window, never
// with count. Memory regions must not overlap one another: responses
// scatter into the arena concurrently.
func (f *File) ReadStrided(arena []byte, mem ioseg.List, start, stride, blockLen, count int64) error {
	_, err := f.Run(context.Background(), Request{
		Arena: arena, Mem: mem,
		Strided: &Strided{Start: start, Stride: stride, BlockLen: blockLen, Count: count},
	})
	return err
}

// WriteStrided writes a vector pattern through the datatype datapath
// (see ReadStrided).
func (f *File) WriteStrided(arena []byte, mem ioseg.List, start, stride, blockLen, count int64) error {
	_, err := f.Run(context.Background(), Request{
		Write: true, Arena: arena, Mem: mem,
		Strided: &Strided{Start: start, Stride: stride, BlockLen: blockLen, Count: count},
	})
	return err
}

// stridedType builds the vector datatype equivalent of a strided
// descriptor (wire.StridedReq.AsDatatype performs the same
// reinterpretation server-side for the legacy request family).
func stridedType(stride, blockLen, count int64) (datatype.Type, error) {
	if blockLen < 0 || count < 0 || stride < 0 {
		return nil, errors.New("pvfs: negative strided parameter")
	}
	return datatype.Vector(count, blockLen, stride, datatype.Bytes(1)), nil
}
