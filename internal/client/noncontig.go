package client

import (
	"errors"
	"fmt"

	"pvfs/internal/ioseg"
	"pvfs/internal/memio"
	"pvfs/internal/wire"
)

// Granularity selects how list I/O entries are built from the memory
// and file region lists (DESIGN.md §3).
type Granularity int

const (
	// GranularityFileRegions builds one entry per contiguous file
	// region, the minimal entry count (§4.3.1's "list I/O can reduce
	// the amount of I/O requests to 30 per processor").
	GranularityFileRegions Granularity = iota
	// GranularityIntersect builds one entry per (memory ∩ file) piece,
	// the max-fragmentation behaviour consistent with the paper's
	// measured FLASH results (983,040 entries per processor).
	GranularityIntersect
)

func (g Granularity) String() string {
	switch g {
	case GranularityFileRegions:
		return "file-regions"
	case GranularityIntersect:
		return "intersect"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// ListOptions tunes list I/O.
type ListOptions struct {
	// Granularity of entry construction; default GranularityFileRegions.
	Granularity Granularity
	// MaxRegions per request; 0 selects wire.MaxRegionsPerRequest (64).
	// Values above the wire limit are rejected by the protocol layer.
	MaxRegions int
}

func (o ListOptions) maxRegions() int {
	if o.MaxRegions <= 0 {
		return wire.MaxRegionsPerRequest
	}
	return o.MaxRegions
}

// checkLists validates a mem/file pair.
func checkLists(arena []byte, mem, file ioseg.List) error {
	if err := mem.Validate(); err != nil {
		return fmt.Errorf("pvfs: memory list: %w", err)
	}
	if err := file.Validate(); err != nil {
		return fmt.Errorf("pvfs: file list: %w", err)
	}
	if mem.TotalLength() != file.TotalLength() {
		return fmt.Errorf("pvfs: memory list covers %d bytes, file list %d",
			mem.TotalLength(), file.TotalLength())
	}
	for i, s := range mem {
		if s.End() > int64(len(arena)) {
			return fmt.Errorf("pvfs: memory region %d (%v) outside buffer of %d bytes", i, s, len(arena))
		}
	}
	return nil
}

// listEntries builds the file-space entry list in stream order for the
// chosen granularity.
func listEntries(mem, file ioseg.List, g Granularity) (ioseg.List, error) {
	if g == GranularityFileRegions {
		return file, nil
	}
	pairs, err := memio.Match(mem, file)
	if err != nil {
		return nil, err
	}
	entries := make(ioseg.List, len(pairs))
	for i, p := range pairs {
		entries[i] = p.File
	}
	return entries, nil
}

// --- multiple I/O (§3.1) ---

// ReadMultiple performs the noncontiguous read the traditional way:
// one contiguous PVFS request per piece that is contiguous in both
// memory and file, since the classic read interface takes one buffer
// pointer and one file offset per call. For FLASH-like patterns with
// 8-byte memory pieces this is the paper's 983,040 requests per
// process (§4.3.1).
func (f *File) ReadMultiple(arena []byte, mem, file ioseg.List) error {
	if err := checkLists(arena, mem, file); err != nil {
		return err
	}
	pairs, err := memio.Match(mem, file)
	if err != nil {
		return err
	}
	for _, pr := range pairs {
		if err := f.readContig(arena[pr.Mem.Offset:pr.Mem.End()], pr.File.Offset); err != nil {
			return err
		}
	}
	return nil
}

// WriteMultiple performs the noncontiguous write with one contiguous
// PVFS request per doubly-contiguous piece.
func (f *File) WriteMultiple(arena []byte, mem, file ioseg.List) error {
	if err := checkLists(arena, mem, file); err != nil {
		return err
	}
	pairs, err := memio.Match(mem, file)
	if err != nil {
		return err
	}
	for _, pr := range pairs {
		if err := f.writeContig(arena[pr.Mem.Offset:pr.Mem.End()], pr.File.Offset); err != nil {
			return err
		}
	}
	return nil
}

// --- list I/O (§3.3) ---

// ReadList performs the noncontiguous read via list I/O. As in the
// paper (§3.3), a logical request describing more than 64 file regions
// is broken into several list requests of at most 64 entries; each
// list request fans out to the I/O servers holding its pieces in
// parallel, and successive list requests are issued in sequence.
func (f *File) ReadList(arena []byte, mem, file ioseg.List, opts ListOptions) error {
	if err := checkLists(arena, mem, file); err != nil {
		return err
	}
	entries, err := listEntries(mem, file, opts.Granularity)
	if err != nil {
		return err
	}
	stream := make([]byte, file.TotalLength())
	var base int64
	for _, batch := range entries.SplitCount(opts.maxRegions()) {
		jobs := f.buildJobs(batch)
		batchBase := base
		err := parallel(jobs, func(j *serverJob) error {
			// A server's share of one 64-entry request stays within
			// the wire limit unless entries straddle many stripes;
			// sub-batch defensively.
			for start := 0; start < len(j.phys); start += wire.MaxRegionsPerRequest {
				end := start + wire.MaxRegionsPerRequest
				if end > len(j.phys) {
					end = len(j.phys)
				}
				sub := j.phys[start:end]
				body, err := (&wire.ListReq{Regions: sub}).Marshal()
				if err != nil {
					return err
				}
				f.fs.stats.Requests.Add(1)
				f.fs.stats.ListRequests.Add(1)
				resp, err := f.call(j.rel, wire.Message{
					Header: wire.Header{Type: wire.TReadList, Handle: f.info.Handle},
					Body:   body,
				})
				if err != nil {
					return err
				}
				want := ioseg.List(sub).TotalLength()
				if int64(len(resp.Body)) != want {
					return fmt.Errorf("pvfs: list read returned %d bytes, want %d", len(resp.Body), want)
				}
				f.fs.stats.BytesIn.Add(want)
				var rpos int64
				for i, ph := range sub {
					sp := batchBase + j.streamPos[start+i]
					copy(stream[sp:sp+ph.Length], resp.Body[rpos:rpos+ph.Length])
					rpos += ph.Length
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		base += ioseg.List(batch).TotalLength()
	}
	return memio.Scatter(arena, mem, stream)
}

// WriteList performs the noncontiguous write via list I/O, with the
// same global 64-entry batching as ReadList.
func (f *File) WriteList(arena []byte, mem, file ioseg.List, opts ListOptions) error {
	if err := checkLists(arena, mem, file); err != nil {
		return err
	}
	entries, err := listEntries(mem, file, opts.Granularity)
	if err != nil {
		return err
	}
	stream, err := memio.Gather(arena, mem)
	if err != nil {
		return err
	}
	var base int64
	for _, batch := range entries.SplitCount(opts.maxRegions()) {
		jobs := f.buildJobs(batch)
		batchBase := base
		err := parallel(jobs, func(j *serverJob) error {
			for start := 0; start < len(j.phys); start += wire.MaxRegionsPerRequest {
				end := start + wire.MaxRegionsPerRequest
				if end > len(j.phys) {
					end = len(j.phys)
				}
				sub := j.phys[start:end]
				data := make([]byte, 0, ioseg.List(sub).TotalLength())
				for i, ph := range sub {
					sp := batchBase + j.streamPos[start+i]
					data = append(data, stream[sp:sp+ph.Length]...)
				}
				body, err := (&wire.ListReq{Regions: sub, Data: data}).Marshal()
				if err != nil {
					return err
				}
				f.fs.stats.Requests.Add(1)
				f.fs.stats.ListRequests.Add(1)
				f.fs.stats.BytesOut.Add(int64(len(data)))
				if _, err := f.call(j.rel, wire.Message{
					Header: wire.Header{Type: wire.TWriteList, Handle: f.info.Handle},
					Body:   body,
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		base += ioseg.List(batch).TotalLength()
	}
	if span, ok := file.Span(); ok {
		f.noteWritten(span.End())
	}
	return nil
}

// --- strided descriptors (§5 future work) ---

// stridedServerLayout computes, per relative server, the order and
// stream positions of the pieces the server will produce for a strided
// pattern. Stream order is logical order (block 0 first).
func (f *File) stridedServerLayout(start, stride, blockLen, count int64) ([]*serverJob, error) {
	if blockLen < 0 || count < 0 || stride < 0 {
		return nil, errors.New("pvfs: negative strided parameter")
	}
	file := make(ioseg.List, 0, count)
	for i := int64(0); i < count; i++ {
		file = append(file, ioseg.Segment{Offset: start + i*stride, Length: blockLen})
	}
	return f.buildJobs(file), nil
}

// ReadStrided reads a vector pattern (count blocks of blockLen every
// stride bytes from start) using one descriptor request per touched
// server, independent of count — the paper's proposed fix for list
// I/O's linear request growth.
func (f *File) ReadStrided(arena []byte, mem ioseg.List, start, stride, blockLen, count int64) error {
	if mem.TotalLength() != blockLen*count {
		return fmt.Errorf("pvfs: memory list covers %d bytes, pattern %d", mem.TotalLength(), blockLen*count)
	}
	jobs, err := f.stridedServerLayout(start, stride, blockLen, count)
	if err != nil {
		return err
	}
	stream := make([]byte, blockLen*count)
	err = parallel(jobs, func(j *serverJob) error {
		req := wire.StridedReq{
			Start: start, Stride: stride, BlockLen: blockLen, Count: count,
			Striping: f.info.Striping, RelIndex: j.rel,
		}
		f.fs.stats.Requests.Add(1)
		f.fs.stats.ListRequests.Add(1)
		resp, err := f.call(j.rel, wire.Message{
			Header: wire.Header{Type: wire.TReadStrided, Handle: f.info.Handle},
			Body:   req.Marshal(),
		})
		if err != nil {
			return err
		}
		if int64(len(resp.Body)) != j.totalBytes {
			return fmt.Errorf("pvfs: strided read returned %d bytes, want %d", len(resp.Body), j.totalBytes)
		}
		f.fs.stats.BytesIn.Add(j.totalBytes)
		var rpos int64
		for i, ph := range j.phys {
			sp := j.streamPos[i]
			copy(stream[sp:sp+ph.Length], resp.Body[rpos:rpos+ph.Length])
			rpos += ph.Length
		}
		return nil
	})
	if err != nil {
		return err
	}
	return memio.Scatter(arena, mem, stream)
}

// WriteStrided writes a vector pattern using one descriptor request
// per touched server.
func (f *File) WriteStrided(arena []byte, mem ioseg.List, start, stride, blockLen, count int64) error {
	if mem.TotalLength() != blockLen*count {
		return fmt.Errorf("pvfs: memory list covers %d bytes, pattern %d", mem.TotalLength(), blockLen*count)
	}
	jobs, err := f.stridedServerLayout(start, stride, blockLen, count)
	if err != nil {
		return err
	}
	stream, err := memio.Gather(arena, mem)
	if err != nil {
		return err
	}
	err = parallel(jobs, func(j *serverJob) error {
		data := make([]byte, 0, j.totalBytes)
		for i, ph := range j.phys {
			sp := j.streamPos[i]
			data = append(data, stream[sp:sp+ph.Length]...)
		}
		req := wire.StridedReq{
			Start: start, Stride: stride, BlockLen: blockLen, Count: count,
			Striping: f.info.Striping, RelIndex: j.rel, Data: data,
		}
		f.fs.stats.Requests.Add(1)
		f.fs.stats.ListRequests.Add(1)
		f.fs.stats.BytesOut.Add(int64(len(data)))
		_, err := f.call(j.rel, wire.Message{
			Header: wire.Header{Type: wire.TWriteStrided, Handle: f.info.Handle},
			Body:   req.Marshal(),
		})
		return err
	})
	if err != nil {
		return err
	}
	f.noteWritten(start + (count-1)*stride + blockLen)
	return nil
}
