package client_test

import (
	"fmt"
	"testing"
	"time"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
)

// Benchmarks for the datatype datapath (DESIGN.md §6), recorded in
// BENCH_2.json: the FLASH-like worst case — 100,000 contiguous
// 8-byte fragments, the paper's §4.3.1 shape — under a 200µs
// per-message service delay at every I/O daemon. List I/O needs
// fragments/64 requests (~1563); datatype I/O needs one request per
// server per response window, so the ratio is the request-count
// collapse the tentpole claims.

const (
	flashFrags   = 100_000
	flashFragLen = 8
	flashStride  = 32
)

// startFlashBench boots a 4-daemon cluster with an optional injected
// delay and a file pre-seeded with the FLASH pattern's span.
func startFlashBench(b *testing.B, delay time.Duration) (*client.File, func()) {
	b.Helper()
	c, err := cluster.Start(cluster.Options{NumIOD: 4})
	if err != nil {
		b.Fatal(err)
	}
	if delay > 0 {
		for _, iod := range c.IODs {
			var f pvfsnet.Faults
			f.SetDelay(delay)
			iod.Net().SetFaults(&f)
		}
	}
	fs, err := c.Connect()
	if err != nil {
		c.Close()
		b.Fatal(err)
	}
	f, err := fs.Create("flashbench.dat", striping.Config{PCount: 4, StripeSize: 4096})
	if err != nil {
		fs.Close()
		c.Close()
		b.Fatal(err)
	}
	return f, func() {
		fs.Close()
		c.Close()
	}
}

func flashType() (datatype.Type, ioseg.List, int64) {
	t := datatype.Vector(flashFrags, flashFragLen, flashStride, datatype.Bytes(1))
	dataLen := int64(flashFrags * flashFragLen)
	return t, ioseg.List{{Offset: 0, Length: dataLen}}, dataLen
}

// BenchmarkFlashLatencyDatatypeVsList sweeps both datapaths over the
// FLASH-like pattern with a 200µs injected per-message delay.
func BenchmarkFlashLatencyDatatypeVsList(b *testing.B) {
	typ, mem, dataLen := flashType()
	for _, dir := range []string{"read", "write"} {
		run := func(name string, op func(f *client.File, arena []byte) error) {
			b.Run(fmt.Sprintf("%s/%s", dir, name), func(b *testing.B) {
				f, cleanup := startFlashBench(b, 200*time.Microsecond)
				defer cleanup()
				arena := make([]byte, dataLen)
				// Seed the file so reads have data.
				if err := f.WriteDatatype(arena, mem, typ, 0, 1, client.DatatypeOptions{}); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(dataLen)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := op(f, arena); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		flat := datatype.Flatten(typ, 0)
		if dir == "read" {
			run("list", func(f *client.File, arena []byte) error {
				return f.ReadList(arena, mem, flat, client.ListOptions{})
			})
			for _, win := range []int64{64 << 10, 512 << 10} {
				win := win
				run(fmt.Sprintf("datatype-win%dk", win>>10), func(f *client.File, arena []byte) error {
					return f.ReadDatatype(arena, mem, typ, 0, 1, client.DatatypeOptions{WindowBytes: win})
				})
			}
			continue
		}
		run("list", func(f *client.File, arena []byte) error {
			return f.WriteList(arena, mem, flat, client.ListOptions{})
		})
		for _, win := range []int64{64 << 10, 512 << 10} {
			win := win
			run(fmt.Sprintf("datatype-win%dk", win>>10), func(f *client.File, arena []byte) error {
				return f.WriteDatatype(arena, mem, typ, 0, 1, client.DatatypeOptions{WindowBytes: win})
			})
		}
	}
}

// BenchmarkFlashDatatypeAllocs measures steady-state allocation on the
// datatype path with no injected delay: allocations scale with windows
// (a handful), not fragments (100k).
func BenchmarkFlashDatatypeAllocs(b *testing.B) {
	typ, mem, dataLen := flashType()
	for _, dir := range []string{"read", "write"} {
		b.Run(dir, func(b *testing.B) {
			f, cleanup := startFlashBench(b, 0)
			defer cleanup()
			arena := make([]byte, dataLen)
			if err := f.WriteDatatype(arena, mem, typ, 0, 1, client.DatatypeOptions{}); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(dataLen)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if dir == "write" {
					err = f.WriteDatatype(arena, mem, typ, 0, 1, client.DatatypeOptions{})
				} else {
					err = f.ReadDatatype(arena, mem, typ, 0, 1, client.DatatypeOptions{})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
