package client_test

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"pvfs/internal/striping"
)

func TestSequentialReadWrite(t *testing.T) {
	_, fs := startCluster(t, 3)
	f, err := fs.Create("seq.dat", striping.Config{PCount: 3, StripeSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	// io.Copy through the Writer interface.
	src := strings.Repeat("parallel virtual file system ", 40)
	n, err := io.Copy(f, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(src)) {
		t.Fatalf("copied %d of %d", n, len(src))
	}

	// Rewind and stream back through a bufio.Reader.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(bufio.NewReaderSize(f, 64))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != src {
		t.Fatalf("streamed read mismatch: %d vs %d bytes", len(got), len(src))
	}
}

func TestSeekWhence(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("seek.dat", striping.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{9}, 100), 0); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(10, io.SeekStart); err != nil || pos != 10 {
		t.Fatalf("SeekStart: %d %v", pos, err)
	}
	if pos, err := f.Seek(5, io.SeekCurrent); err != nil || pos != 15 {
		t.Fatalf("SeekCurrent: %d %v", pos, err)
	}
	if pos, err := f.Seek(-20, io.SeekEnd); err != nil || pos != 80 {
		t.Fatalf("SeekEnd: %d %v", pos, err)
	}
	if f.Tell() != 80 {
		t.Fatalf("Tell = %d", f.Tell())
	}
	if _, err := f.Seek(-200, io.SeekCurrent); err == nil {
		t.Fatal("negative position accepted")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestReadPastEOF(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("eof.dat", striping.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("12345"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := f.Read(buf)
	if n != 5 {
		t.Fatalf("read %d, want 5", n)
	}
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestSequentialAppendPattern(t *testing.T) {
	// Writing via the cursor then reading the file back via ReadAt.
	_, fs := startCluster(t, 2)
	f, err := fs.Create("log.dat", striping.Config{PCount: 2, StripeSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := f.Write([]byte("entry.")); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, 60)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != strings.Repeat("entry.", 10) {
		t.Fatalf("log = %q", got)
	}
}
