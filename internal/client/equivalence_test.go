package client_test

import (
	"bytes"
	"fmt"
	"testing"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/ioseg"
	"pvfs/internal/patterns"
	"pvfs/internal/striping"
)

// Cross-method equivalence on unstructured input: every noncontiguous
// method must produce byte-identical file and memory images on the
// seeded random pattern, which has no regularity for any method to
// exploit. This is the library's core correctness contract (§3: the
// methods differ only in cost).

// fullImage reads the whole file contiguously.
func fullImage(t *testing.T, fs *client.FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestCrossMethodEquivalenceRandom(t *testing.T) {
	for _, seed := range []int64{1, 7, 4242} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c, err := cluster.Start(cluster.Options{NumIOD: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			fs, err := c.Connect()
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close()

			pat, err := patterns.NewRandom(3, seed, patterns.RandomOptions{
				RegionsPerRank: 80, MinSize: 1, MaxSize: 700, MaxGap: 500,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := striping.Config{PCount: 4, StripeSize: 512}

			// Reference image computed in memory.
			ref := make([]byte, pat.FileBytes())
			arenas := make([][]byte, pat.Ranks())
			for r := 0; r < pat.Ranks(); r++ {
				arenas[r] = make([]byte, pat.TotalBytes(r))
				for i := range arenas[r] {
					arenas[r][i] = byte(int(seed) + r*31 + i)
				}
				var pos int64
				for i := 0; i < pat.FileRegions(r); i++ {
					seg := pat.FileRegion(r, i)
					copy(ref[seg.Offset:seg.End()], arenas[r][pos:pos+seg.Length])
					pos += seg.Length
				}
			}

			// Write the same data under each method into its own file.
			// Ranks run sequentially so data sieving's read-modify-write
			// is safe (the paper serializes sieving writes, §4.2.1).
			methods := []client.Method{client.MethodMultiple, client.MethodSieve, client.MethodList}
			for _, m := range methods {
				name := "equiv-" + m.String()
				f, err := fs.Create(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < pat.Ranks(); r++ {
					mem := patterns.MemList(pat, r)
					file := patterns.FileList(pat, r)
					if err := f.WriteNoncontig(m, arenas[r], mem, file, client.Options{}); err != nil {
						t.Fatalf("%v write rank %d: %v", m, r, err)
					}
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
				img := fullImage(t, fs, name)
				if len(img) < len(ref) {
					t.Fatalf("%v: image %d bytes, want ≥ %d", m, len(img), len(ref))
				}
				if !bytes.Equal(img[:len(ref)], ref) {
					t.Fatalf("%v: file image differs from reference", m)
				}
			}

			// Read back under every method from the list-written file
			// and compare the arenas.
			for _, m := range methods {
				f, err := fs.Open("equiv-list")
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < pat.Ranks(); r++ {
					mem := patterns.MemList(pat, r)
					file := patterns.FileList(pat, r)
					got := make([]byte, pat.TotalBytes(r))
					if err := f.ReadNoncontig(m, got, mem, file, client.Options{}); err != nil {
						t.Fatalf("%v read rank %d: %v", m, r, err)
					}
					if !bytes.Equal(got, arenas[r]) {
						t.Fatalf("%v: rank %d arena differs after read-back", m, r)
					}
				}
				f.Close()
			}
		})
	}
}

// TestStridedEquivalenceOnVector checks the descriptor extension
// against list I/O on a uniform vector (its applicable domain).
func TestStridedEquivalenceOnVector(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const (
		count    = int64(200)
		blockLen = int64(48)
		stride   = int64(160)
	)
	arena := make([]byte, count*blockLen)
	for i := range arena {
		arena[i] = byte(i * 3)
	}
	mem := ioseg.List{{Offset: 0, Length: int64(len(arena))}}
	flist := make(ioseg.List, count)
	for i := int64(0); i < count; i++ {
		flist[i] = ioseg.Segment{Offset: i * stride, Length: blockLen}
	}

	fList, err := fs.Create("vec-list", striping.Config{PCount: 4, StripeSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := fList.WriteList(arena, mem, flist, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	fList.Close()

	fStr, err := fs.Create("vec-strided", striping.Config{PCount: 4, StripeSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := fStr.WriteStrided(arena, mem, 0, stride, blockLen, count); err != nil {
		t.Fatal(err)
	}
	fStr.Close()

	a := fullImage(t, fs, "vec-list")
	b := fullImage(t, fs, "vec-strided")
	if !bytes.Equal(a, b) {
		t.Fatal("list and strided writes left different images")
	}

	// Read back via strided and compare to the arena.
	fr, err := fs.Open("vec-list")
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	got := make([]byte, len(arena))
	if err := fr.ReadStrided(got, mem, 0, stride, blockLen, count); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, arena) {
		t.Fatal("strided read-back differs from source arena")
	}
}

// TestListWindowEquivalence pins the pipelining contract: ReadList and
// WriteList must produce byte-identical results whether requests are
// serialized (Window=1, the original PVFS discipline) or pipelined
// (Window=8), across granularities and an unstructured random pattern.
func TestListWindowEquivalence(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	pat, err := patterns.NewRandom(2, 99, patterns.RandomOptions{
		RegionsPerRank: 300, MinSize: 1, MaxSize: 400, MaxGap: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := striping.Config{PCount: 4, StripeSize: 512}

	for _, g := range []client.Granularity{client.GranularityFileRegions, client.GranularityIntersect} {
		for r := 0; r < pat.Ranks(); r++ {
			mem := patterns.MemList(pat, r)
			file := patterns.FileList(pat, r)
			arena := make([]byte, pat.TotalBytes(r))
			for i := range arena {
				arena[i] = byte(r*89 + i*13)
			}
			names := [2]string{}
			for wi, window := range []int{1, 8} {
				name := fmt.Sprintf("win-%v-r%d-w%d", g, r, window)
				names[wi] = name
				f, err := fs.Create(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				opts := client.ListOptions{Granularity: g, Window: window}
				if err := f.WriteList(arena, mem, file, opts); err != nil {
					t.Fatalf("write window=%d: %v", window, err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
			}
			a := fullImage(t, fs, names[0])
			b := fullImage(t, fs, names[1])
			if !bytes.Equal(a, b) {
				t.Fatalf("granularity %v rank %d: window=1 and window=8 images differ", g, r)
			}

			// Read the serialized-written file back under both windows.
			f, err := fs.Open(names[0])
			if err != nil {
				t.Fatal(err)
			}
			for _, window := range []int{1, 8} {
				got := make([]byte, pat.TotalBytes(r))
				opts := client.ListOptions{Granularity: g, Window: window}
				if err := f.ReadList(got, mem, file, opts); err != nil {
					t.Fatalf("read window=%d: %v", window, err)
				}
				if !bytes.Equal(got, arena) {
					t.Fatalf("granularity %v rank %d window=%d: read-back differs", g, r, window)
				}
			}
			f.Close()
		}
	}
}
