package client

import (
	"context"

	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
	"pvfs/internal/memio"
)

// The hybrid list+sieve method of the paper's conclusion (§5): "if two
// noncontiguous regions are close to each other, a data sieving
// operation may take place for just those particular regions". Nearby
// file regions are coalesced (gap bytes travel as extra payload) and
// the coalesced extents are fetched with list I/O.

// ReadHybrid reads the noncontiguous pattern by coalescing file
// regions whose gaps are at most gap bytes and issuing list I/O on the
// coalesced extents, sieving the wanted bytes out client-side. It is a
// synchronous wrapper over Start.
func (f *File) ReadHybrid(arena []byte, mem, file ioseg.List, gap int64, opts ListOptions) (SieveStats, error) {
	res, err := f.Run(context.Background(), Request{
		Arena: arena, Mem: mem, File: file,
		Method: AccessHybrid, CoalesceGap: gap, List: opts,
	})
	return res.Sieve, err
}

// WriteHybrid writes the pattern through coalesced extents: each
// extent is read (list I/O), updated in memory, and written back (list
// I/O) — read-modify-write at extent rather than buffer granularity.
// Like data sieving writes, concurrent writers to overlapping extents
// must be serialized by the caller (PVFS has no locks, §4.2.1); gap=0
// coalesces only adjacent regions and performs no read-modify-write.
func (f *File) WriteHybrid(arena []byte, mem, file ioseg.List, gap int64, opts ListOptions) (SieveStats, error) {
	res, err := f.Run(context.Background(), Request{
		Write: true, Arena: arena, Mem: mem, File: file,
		Method: AccessHybrid, CoalesceGap: gap, List: opts,
	})
	return res.Sieve, err
}

// readHybrid is the hybrid datapath shared by Start and the legacy
// wrappers.
func (f *File) readHybrid(ctx context.Context, arena []byte, mem, file ioseg.List, gap int64, opts ListOptions) (SieveStats, error) {
	var st SieveStats
	if err := checkLists(arena, mem, file); err != nil {
		return st, err
	}
	coalesced := file.Normalize().Coalesce(gap)
	tmp := make([]byte, coalesced.TotalLength())
	tmpMem := ioseg.List{{Offset: 0, Length: coalesced.TotalLength()}}
	if err := f.readList(ctx, tmp, tmpMem, coalesced, opts); err != nil {
		return st, err
	}
	// Extract the requested regions from each coalesced extent into
	// the stream, then scatter to memory.
	stream := make([]byte, file.TotalLength())
	var base int64
	for _, e := range coalesced {
		useful, err := memio.ExtractWindow(stream, file, tmp[base:base+e.Length], e)
		if err != nil {
			return st, err
		}
		st.Windows++
		st.BytesAccessed += e.Length
		st.BytesUseful += useful
		base += e.Length
	}
	if err := memio.Scatter(arena, mem, stream); err != nil {
		return st, err
	}
	return st, nil
}

func (f *File) writeHybrid(ctx context.Context, arena []byte, mem, file ioseg.List, gap int64, opts ListOptions) (SieveStats, error) {
	var st SieveStats
	if err := checkLists(arena, mem, file); err != nil {
		return st, err
	}
	stream, err := memio.Gather(arena, mem)
	if err != nil {
		return st, err
	}
	coalesced := file.Normalize().Coalesce(gap)
	tmp := make([]byte, coalesced.TotalLength())
	tmpMem := ioseg.List{{Offset: 0, Length: coalesced.TotalLength()}}

	// Read-modify-write is only needed where coalescing swallowed
	// gaps; with gap==0 the coalesced extents are exactly covered.
	rmw := coalesced.TotalLength() != file.TotalLength()
	if rmw {
		if err := f.readList(ctx, tmp, tmpMem, coalesced, opts); err != nil {
			return st, err
		}
		st.BytesAccessed += coalesced.TotalLength()
	}
	var base int64
	for _, e := range coalesced {
		useful, err := memio.InjectWindow(tmp[base:base+e.Length], stream, file, e)
		if err != nil {
			return st, err
		}
		st.Windows++
		st.BytesUseful += useful
		base += e.Length
	}
	if err := f.writeList(ctx, tmp, tmpMem, coalesced, opts); err != nil {
		return st, err
	}
	st.BytesAccessed += coalesced.TotalLength()
	return st, nil
}

// ReadType reads the file regions described by an MPI-style datatype
// at a base offset into a contiguous buffer — the descriptive request
// language of §5. It is a wrapper over Start with a datatype-layout
// Request left on auto method selection: types the wire codec can
// carry ship un-flattened down the datatype path (DESIGN.md §6);
// anything past the codec's limits flattens to list I/O.
func (f *File) ReadType(arena []byte, t datatype.Type, base int64, opts ListOptions) error {
	_, err := f.Run(context.Background(), Request{
		Arena: arena, Type: t, Base: base, Count: 1,
		List: opts, Datatype: DatatypeOptions{Window: opts.Window},
	})
	return err
}

// WriteType writes a contiguous buffer into the file regions described
// by a datatype at a base offset (see ReadType for routing).
func (f *File) WriteType(arena []byte, t datatype.Type, base int64, opts ListOptions) error {
	_, err := f.Run(context.Background(), Request{
		Write: true, Arena: arena, Type: t, Base: base, Count: 1,
		List: opts, Datatype: DatatypeOptions{Window: opts.Window},
	})
	return err
}
