package client_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/striping"
)

// Tests for the unified nonblocking API (DESIGN.md §8): Start/Op,
// cancellation mid-transfer, the per-call deadline knob, and overlap
// of concurrent started operations.

// startTestCluster boots a small cluster with one connected session
// and an open striped file, plus the Faults handles of each daemon.
func startTestCluster(t *testing.T, niod int) (*client.FS, *client.File, []*pvfsnet.Faults) {
	t.Helper()
	c, err := cluster.Start(cluster.Options{NumIOD: niod})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	faults := make([]*pvfsnet.Faults, len(c.IODs))
	for i, iod := range c.IODs {
		faults[i] = &pvfsnet.Faults{}
		iod.Net().SetFaults(faults[i])
	}
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	f, err := fs.Create("start.dat", striping.Config{PCount: niod, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return fs, f, faults
}

// fragPattern builds a fragmented pattern: n pieces of 64 bytes,
// contiguous in memory, every 256 bytes in the file.
func fragPattern(n int64) (mem, file ioseg.List) {
	for i := int64(0); i < n; i++ {
		mem = append(mem, ioseg.Segment{Offset: i * 64, Length: 64})
		file = append(file, ioseg.Segment{Offset: i * 256, Length: 64})
	}
	return
}

// waitGoroutines polls until the goroutine count drops to at most
// want, failing the test after two seconds.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d live, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidTransfer cancels in-flight operations on every pipelined
// datapath (list and datatype, reads and writes) and verifies: the Op
// fails with context.Canceled, no goroutines leak, and the same pooled
// connections serve a subsequent full transfer correctly — the
// acceptance criterion that a canceled Op leaves the pool reusable.
func TestCancelMidTransfer(t *testing.T) {
	_, f, faults := startTestCluster(t, 4)
	mem, file := fragPattern(2048) // 32 requests/server at 64 entries
	arena := make([]byte, mem.TotalLength())
	for i := range arena {
		arena[i] = byte(i * 7)
	}
	vec := datatype.Vector(2048, 64, 256, datatype.Bytes(1))

	// Seed the file so canceled reads have data under them.
	if err := f.WriteList(arena, mem, file, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}

	// Window=2 keeps the pipelined path (in-flight tags to abandon)
	// while forcing many sequential drain rounds: with the 2ms
	// injected delay every op takes tens of milliseconds, so the 5ms
	// cancel below lands deterministically mid-transfer (at default
	// windows the whole op can finish inside the injected delay).
	serial := client.ListOptions{Window: 2}
	dtSerial := client.DatatypeOptions{WindowBytes: 2 << 10, Window: 2}
	reqs := map[string]client.Request{
		"list-read":      {Arena: make([]byte, len(arena)), Mem: mem, File: file, Method: client.AccessList, List: serial},
		"list-write":     {Write: true, Arena: arena, Mem: mem, File: file, Method: client.AccessList, List: serial},
		"datatype-read":  {Arena: make([]byte, len(arena)), Mem: mem, Type: vec, Base: 0, Count: 1, Method: client.AccessDatatype, Datatype: dtSerial},
		"datatype-write": {Write: true, Arena: arena, Mem: mem, Type: vec, Base: 0, Count: 1, Method: client.AccessDatatype, Datatype: dtSerial},
	}

	base := runtime.NumGoroutine()
	for name, req := range reqs {
		t.Run(name, func(t *testing.T) {
			for _, fa := range faults {
				fa.SetDelay(2 * time.Millisecond)
			}
			ctx, cancel := context.WithCancel(context.Background())
			op := f.Start(ctx, req)
			time.Sleep(5 * time.Millisecond) // let requests get in flight
			cancel()
			_, err := op.Wait()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("op error = %v, want context.Canceled", err)
			}
			for _, fa := range faults {
				fa.SetDelay(0)
			}
			// The pool must still carry the transfer end to end.
			if err := f.WriteList(arena, mem, file, client.ListOptions{}); err != nil {
				t.Fatalf("write after cancel: %v", err)
			}
			got := make([]byte, len(arena))
			if err := f.ReadList(got, mem, file, client.ListOptions{}); err != nil {
				t.Fatalf("read after cancel: %v", err)
			}
			if !bytes.Equal(got, arena) {
				t.Fatal("data mismatch after canceled op")
			}
		})
	}
	// Late responses drain; nothing may stay behind but the pool's
	// read loops (already counted in base) and test runner slack.
	waitGoroutines(t, base+2)
}

// TestCallTimeoutFailsStalledCall pins the per-call deadline knob: a
// daemon stalling every request fails the operation promptly with
// DeadlineExceeded (not a forever-wedged waiter), and once the daemon
// recovers the same pooled connection completes a full transfer.
func TestCallTimeoutFailsStalledCall(t *testing.T) {
	_, f, faults := startTestCluster(t, 2)
	mem, file := fragPattern(256)
	arena := make([]byte, mem.TotalLength())
	for i := range arena {
		arena[i] = byte(i)
	}
	for _, fa := range faults {
		fa.SetDelay(2 * time.Second) // a stalled daemon (20× the call budget)
	}
	start := time.Now()
	_, err := f.Run(context.Background(), client.Request{
		Write: true, Arena: arena, Mem: mem, File: file,
		Method: client.AccessList, CallTimeout: 100 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("stalled call was not bounded by CallTimeout")
	}
	for _, fa := range faults {
		fa.SetDelay(0)
	}
	// The stalled requests are still queued behind the injected delay
	// only until it elapses for them; new calls on the same pooled
	// connections must succeed.
	if err := f.WriteList(arena, mem, file, client.ListOptions{}); err != nil {
		t.Fatalf("write after stall: %v", err)
	}
	got := make([]byte, len(arena))
	if err := f.ReadList(got, mem, file, client.ListOptions{}); err != nil {
		t.Fatalf("read after stall: %v", err)
	}
	if !bytes.Equal(got, arena) {
		t.Fatal("data mismatch after stalled op")
	}
}

// TestStartOverlapOutOfOrder runs two concurrent Ops on one file: a
// long fragmented write and a short one. The short op must complete
// while the long one is still in flight (out-of-order completion), and
// the resulting image must be byte-identical to running the same two
// requests serially.
func TestStartOverlapOutOfOrder(t *testing.T) {
	fs, f, faults := startTestCluster(t, 2)
	for _, fa := range faults {
		fa.SetDelay(10 * time.Millisecond)
	}

	memA, fileA := fragPattern(512) // 8 serialized requests/server, ≥80ms
	arenaA := make([]byte, memA.TotalLength())
	for i := range arenaA {
		arenaA[i] = byte(i * 3)
	}
	// Short op: one contiguous write beyond the long op's span.
	arenaB := bytes.Repeat([]byte{0xAB}, 4096)
	offB := int64(512 * 256)

	ctx := context.Background()
	reqA := client.Request{
		Write: true, Arena: arenaA, Mem: memA, File: fileA,
		Method: client.AccessList, List: client.ListOptions{Window: 1},
	}
	reqB := client.Request{
		Write: true, Arena: arenaB,
		File: ioseg.List{{Offset: offB, Length: int64(len(arenaB))}},
	}
	opA := f.Start(ctx, reqA)
	opB := f.Start(ctx, reqB)

	select {
	case <-opB.Done():
		// B finished first: out-of-order completion with A in flight.
		if opA.Err() != nil {
			t.Fatalf("long op failed early: %v", opA.Err())
		}
	case <-opA.Done():
		t.Fatal("long op finished before short op; no overlap happened")
	}
	if _, err := opA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := opB.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, fa := range faults {
		fa.SetDelay(0)
	}

	// Serialized reference on a second file.
	ref, err := fs.Create("start-ref.dat", striping.Config{PCount: 2, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(ctx, reqA); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(ctx, reqB); err != nil {
		t.Fatal(err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	a := fullImage(t, fs, "start.dat")
	b := fullImage(t, fs, "start-ref.dat")
	if !bytes.Equal(a, b) {
		t.Fatal("overlapped and serialized executions left different images")
	}
}

// TestRequestAutoRouting checks the auto method selection: encodable
// datatype layouts take the datatype path, single-region pairs the
// contiguous path, fragmented region lists the list path — visible in
// the per-path request counters.
func TestRequestAutoRouting(t *testing.T) {
	fs, f, _ := startTestCluster(t, 2)
	ctx := context.Background()

	// Contiguous.
	buf := bytes.Repeat([]byte{1}, 8192)
	res, err := f.Run(ctx, client.Request{Write: true, Arena: buf,
		File: ioseg.List{{Offset: 0, Length: int64(len(buf))}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != client.AccessContig {
		t.Fatalf("single-region auto method = %v, want contig", res.Method)
	}

	// Datatype (encodable vector).
	before := fs.Counters().Snapshot()
	vec := datatype.Vector(16, 64, 256, datatype.Bytes(1))
	arena := make([]byte, 16*64)
	res, err = f.Run(ctx, client.Request{Write: true, Arena: arena, Type: vec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != client.AccessDatatype {
		t.Fatalf("vector auto method = %v, want datatype", res.Method)
	}
	d := fs.Counters().Snapshot().Sub(before)
	if d.Datatype.Requests == 0 {
		t.Fatalf("datatype path counter did not move: %+v", d)
	}

	// Fragmented region list.
	mem, file := fragPattern(8)
	res, err = f.Run(ctx, client.Request{Write: true, Arena: make([]byte, mem.TotalLength()), Mem: mem, File: file})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != client.AccessList {
		t.Fatalf("fragmented auto method = %v, want list", res.Method)
	}
	if res.Bytes != mem.TotalLength() {
		t.Fatalf("result bytes = %d, want %d", res.Bytes, mem.TotalLength())
	}

	// Strided shorthand routes down the datatype path and records on
	// the strided counter.
	before = fs.Counters().Snapshot()
	res, err = f.Run(ctx, client.Request{Write: true, Arena: arena,
		Strided: &client.Strided{Start: 0, Stride: 256, BlockLen: 64, Count: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != client.AccessDatatype {
		t.Fatalf("strided auto method = %v, want datatype", res.Method)
	}
	if d := fs.Counters().Snapshot().Sub(before); d.Strided.Requests == 0 {
		t.Fatalf("strided path counter did not move: %+v", d)
	}

	// A request with two layouts is rejected.
	if _, err := f.Run(ctx, client.Request{Arena: arena, Type: vec, File: file}); err == nil {
		t.Fatal("request with two file layouts accepted")
	}
	_ = fmt.Sprintf("%v", res.Method) // AccessMethod implements Stringer
}
