package client_test

import (
	"bytes"
	"math/rand"
	"testing"

	"pvfs/internal/client"
	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
	"pvfs/internal/striping"
)

func TestHybridReadMatchesList(t *testing.T) {
	_, fs := startCluster(t, 4)
	f, err := fs.Create("hyb.dat", striping.Config{PCount: 4, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Clusters of nearby regions separated by large gaps.
	var mem, file ioseg.List
	var memPos int64
	for c := int64(0); c < 6; c++ {
		for k := int64(0); k < 4; k++ {
			file = append(file, ioseg.Segment{Offset: c*10000 + k*30, Length: 20})
			mem = append(mem, ioseg.Segment{Offset: memPos, Length: 20})
			memPos += 20
		}
	}
	arena := make([]byte, memPos)
	rand.New(rand.NewSource(8)).Read(arena)
	if err := f.WriteList(arena, mem, file, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, memPos)
	before := fs.Counters().Snapshot()
	st, err := f.ReadHybrid(got, mem, file, 100, client.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := fs.Counters().Snapshot()
	if !bytes.Equal(got, arena) {
		t.Fatal("hybrid read data mismatch")
	}
	// 24 regions coalesce to 6 extents (gaps of 10 bytes swallowed).
	if st.Windows != 6 {
		t.Fatalf("windows = %d, want 6", st.Windows)
	}
	if st.BytesUseful != 480 {
		t.Fatalf("useful = %d, want 480", st.BytesUseful)
	}
	if st.BytesAccessed != 6*110 { // 4 regions of 20 + 3 gaps of 10
		t.Fatalf("accessed = %d, want 660", st.BytesAccessed)
	}
	if got := after.ListRequests - before.ListRequests; got < 1 || got > 6 {
		t.Fatalf("hybrid issued %d list requests", got)
	}
}

func TestHybridWritePreservesGaps(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("hybw.dat", striping.Config{PCount: 2, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill so gap bytes have known values the RMW must preserve.
	base := bytes.Repeat([]byte{0x55}, 2000)
	if _, err := f.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	var mem, file ioseg.List
	var memPos int64
	for k := int64(0); k < 8; k++ {
		file = append(file, ioseg.Segment{Offset: 100 + k*50, Length: 10})
		mem = append(mem, ioseg.Segment{Offset: memPos, Length: 10})
		memPos += 10
	}
	arena := bytes.Repeat([]byte{0xAA}, int(memPos))
	st, err := f.WriteHybrid(arena, mem, file, 64, client.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 1 { // all gaps are 40 <= 64: one extent
		t.Fatalf("windows = %d, want 1", st.Windows)
	}
	got := make([]byte, 2000)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		want := byte(0x55)
		for k := int64(0); k < 8; k++ {
			if int64(i) >= 100+k*50 && int64(i) < 110+k*50 {
				want = 0xAA
			}
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestHybridZeroGapSkipsRMW(t *testing.T) {
	_, fs := startCluster(t, 2)
	f, err := fs.Create("hyb0.dat", striping.Config{PCount: 2, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent regions: gap 0 coalesces without reading back.
	file := ioseg.List{{Offset: 0, Length: 50}, {Offset: 50, Length: 50}}
	mem := ioseg.List{{Offset: 0, Length: 100}}
	arena := bytes.Repeat([]byte{7}, 100)
	before := fs.Counters().Snapshot()
	st, err := f.WriteHybrid(arena, mem, file, 0, client.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := fs.Counters().Snapshot()
	if st.BytesAccessed != 100 {
		t.Fatalf("accessed = %d, want 100 (write only)", st.BytesAccessed)
	}
	if after.BytesIn != before.BytesIn {
		t.Fatal("zero-gap hybrid write read data back")
	}
}

func TestReadWriteTypeVector(t *testing.T) {
	_, fs := startCluster(t, 4)
	f, err := fs.Create("dtype.dat", striping.Config{PCount: 4, StripeSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// A vector of 50 blocks of 16 bytes every 100 bytes at base 40.
	v := datatype.Vector(50, 16, 100, datatype.Bytes(1))
	arena := make([]byte, v.Size())
	rand.New(rand.NewSource(4)).Read(arena)
	before := fs.Counters().Snapshot()
	if err := f.WriteType(arena, v, 40, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	after := fs.Counters().Snapshot()
	// Uniform vectors ship as strided descriptors: <= one request per
	// server instead of per 64-region batch.
	if got := after.Requests - before.Requests; got > 4 {
		t.Fatalf("vector write used %d requests", got)
	}
	got := make([]byte, v.Size())
	if err := f.ReadType(got, v, 40, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, arena) {
		t.Fatal("datatype round trip mismatch")
	}

	// Cross-check against explicit list I/O.
	file := datatype.Flatten(v, 40)
	mem := ioseg.List{{Offset: 0, Length: v.Size()}}
	got2 := make([]byte, v.Size())
	if err := f.ReadList(got2, mem, file, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, arena) {
		t.Fatal("list read of datatype regions mismatch")
	}
}

func TestReadWriteTypeSubarray(t *testing.T) {
	_, fs := startCluster(t, 4)
	f, err := fs.Create("dtype2.dat", striping.Config{PCount: 4, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Non-uniform: a 2-D subarray goes through list I/O.
	sub, err := datatype.Subarray([]int64{32, 64}, []int64{8, 24}, []int64{4, 10}, datatype.Bytes(1))
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]byte, sub.Size())
	rand.New(rand.NewSource(5)).Read(arena)
	if err := f.WriteType(arena, sub, 0, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, sub.Size())
	if err := f.ReadType(got, sub, 0, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, arena) {
		t.Fatal("subarray datatype round trip mismatch")
	}
}
