package client_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pvfs/internal/client"
	"pvfs/internal/ioseg"
)

// BenchmarkStartAsyncOverlap measures the overlap win of the
// nonblocking API (DESIGN.md §8): one rank's fragmented transfer is
// split into N stream-contiguous chunks started as N concurrent Ops
// against daemons with a 200µs injected per-message service delay.
// Each Op runs its requests serialized (Window=1), so the speedup
// from async=1 to async=N is purely Start-level concurrency — the
// MPI_File_iwrite/iread overlap the blocking method matrix could not
// express. Results are recorded in BENCH_4.json.
func BenchmarkStartAsyncOverlap(b *testing.B) {
	for _, async := range []int{1, 2, 4, 8} {
		for _, dir := range []string{"write", "read"} {
			b.Run(fmt.Sprintf("%s/async%d", dir, async), func(b *testing.B) {
				f, mem, file, cleanup := startListBench(b, 200*time.Microsecond)
				defer cleanup()
				arena := make([]byte, mem.TotalLength())
				write := dir == "write"
				if !write {
					if err := f.WriteList(arena, mem, file, client.ListOptions{}); err != nil {
						b.Fatal(err)
					}
				}
				chunks := splitStream(mem, file, async)
				ctx := context.Background()
				b.SetBytes(mem.TotalLength())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ops := make([]*client.Op, 0, async)
					for _, ch := range chunks {
						ops = append(ops, f.Start(ctx, client.Request{
							Write: write, Arena: arena, Mem: ch.mem, File: ch.file,
							Method: client.AccessList, List: client.ListOptions{Window: 1},
						}))
					}
					for _, op := range ops {
						if _, err := op.Wait(); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

type streamChunk struct{ mem, file ioseg.List }

// splitStream cuts a (mem, file) pair into n stream-contiguous chunks
// of near-equal bytes at file-region boundaries (the cmd/pvfs-bench
// -async splitting).
func splitStream(mem, file ioseg.List, n int) []streamChunk {
	total := file.TotalLength()
	if n <= 1 || total == 0 || len(file) < 2 {
		return []streamChunk{{mem: mem, file: file}}
	}
	per := (total + int64(n) - 1) / int64(n)
	var chunks []streamChunk
	var cur streamChunk
	var curBytes int64
	memIdx, memUsed := 0, int64(0)
	takeMem := func(want int64) ioseg.List {
		var out ioseg.List
		for want > 0 && memIdx < len(mem) {
			m := mem[memIdx]
			take := m.Length - memUsed
			if take > want {
				take = want
			}
			out = append(out, ioseg.Segment{Offset: m.Offset + memUsed, Length: take})
			memUsed += take
			want -= take
			if memUsed == m.Length {
				memIdx, memUsed = memIdx+1, 0
			}
		}
		return out
	}
	for _, s := range file {
		cur.file = append(cur.file, s)
		curBytes += s.Length
		if curBytes >= per && len(chunks) < n-1 {
			cur.mem = takeMem(curBytes)
			chunks = append(chunks, cur)
			cur, curBytes = streamChunk{}, 0
		}
	}
	if len(cur.file) > 0 {
		cur.mem = takeMem(curBytes)
		chunks = append(chunks, cur)
	}
	return chunks
}
