package client_test

// End-to-end tests of the storage cache behind the daemons (DESIGN.md
// §7): every client datapath must read its own writes through a
// cache-enabled deployment, Sync/flush-on-close must move dirty blocks
// down to the backing store, and the server stats must surface the
// cache counters.

import (
	"bytes"
	"testing"

	"pvfs/internal/client"
	"pvfs/internal/cluster"
	"pvfs/internal/ioseg"
	"pvfs/internal/store"
	"pvfs/internal/striping"
)

// startCachedCluster boots a deployment whose daemons run a write-back
// cache with the periodic flusher disabled, so data moves to the
// backing store only via TSync (File.Sync / Close).
func startCachedCluster(t *testing.T, numIOD int) (*cluster.Cluster, *client.FS) {
	t.Helper()
	c, err := cluster.Start(cluster.Options{
		NumIOD: numIOD,
		Cache:  &store.CacheOptions{BlockSize: 4096, FlushInterval: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return c, fs
}

func TestCachedClusterDatapaths(t *testing.T) {
	_, fs := startCachedCluster(t, 4)
	f, err := fs.Create("cached.dat", striping.Config{PCount: 4, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}

	// Contiguous.
	want := bytes.Repeat([]byte("cache"), 4096)
	if _, err := f.WriteAt(want, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("contiguous read diverges through cache")
	}

	// List I/O: interleaved 64-byte fragments.
	var mem, file ioseg.List
	for i := int64(0); i < 256; i++ {
		mem = append(mem, ioseg.Segment{Offset: i * 64, Length: 64})
		file = append(file, ioseg.Segment{Offset: 40000 + i*256, Length: 64})
	}
	arena := bytes.Repeat([]byte{0xA5}, int(mem.TotalLength()))
	if err := f.WriteList(arena, mem, file, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(arena))
	if err := f.ReadList(back, mem, file, client.ListOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, arena) {
		t.Fatal("list read diverges through cache")
	}

	// Datatype/strided path.
	sw := bytes.Repeat([]byte{0x5A}, 64*8)
	smem := ioseg.List{{Offset: 0, Length: int64(len(sw))}}
	if err := f.WriteStrided(sw, smem, 200000, 512, 8, 64); err != nil {
		t.Fatal(err)
	}
	sr := make([]byte, len(sw))
	if err := f.ReadStrided(sr, smem, 200000, 512, 8, 64); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sr, sw) {
		t.Fatal("strided read diverges through cache")
	}

	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncFlushesDaemonCaches(t *testing.T) {
	c, fs := startCachedCluster(t, 2)
	f, err := fs.Create("sync.dat", striping.Config{PCount: 2, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 16384), 0); err != nil {
		t.Fatal(err)
	}
	if st := c.TotalStats(); st.CacheFlushes != 0 {
		t.Fatalf("flushes before sync: %+v", st)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	st := c.TotalStats()
	if st.CacheFlushes == 0 {
		t.Fatalf("Sync flushed nothing: %+v", st)
	}
}

func TestCloseFlushesDaemonCaches(t *testing.T) {
	c, fs := startCachedCluster(t, 2)
	f, err := fs.Create("close.dat", striping.Config{PCount: 2, StripeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if st := c.TotalStats(); st.CacheFlushes == 0 {
		t.Fatalf("Close flushed nothing: %+v", st)
	}
	// The logical size must agree after reopen, served from the
	// flushed backing store.
	g, err := fs.Open("close.dat")
	if err != nil {
		t.Fatal(err)
	}
	sz, err := g.Size()
	if err != nil {
		t.Fatal(err)
	}
	if sz != 8192 {
		t.Fatalf("size after flush-on-close = %d", sz)
	}
}
