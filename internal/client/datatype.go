package client

// Datatype I/O (DESIGN.md §6): the access pattern crosses the wire as
// an encoded constructor tree and each I/O daemon evaluates its own
// share. The client's job shrinks to windowing and memory movement:
// cut each server's share of the pattern-data stream into
// response-size windows, pipeline one request per window, and
// scatter/gather between the user arena and pooled message bodies via
// memio.StreamMap. Wire requests per server are O(transfer size /
// window) — independent of how many contiguous fragments the pattern
// flattens to, the paper's §5 fix for list I/O's linear request
// growth.

import (
	"context"
	"fmt"

	"pvfs/internal/datatype"
	"pvfs/internal/ioseg"
	"pvfs/internal/memio"
	"pvfs/internal/striping"
	"pvfs/internal/wire"
)

// DefaultDatatypeWindowBytes is the per-request payload window when
// DatatypeOptions.WindowBytes is zero: large enough that a multi-MB
// share moves in a handful of requests, small enough that neither side
// buffers more than a few windows per connection.
const DefaultDatatypeWindowBytes = 512 << 10

// DatatypeOptions tunes datatype I/O.
type DatatypeOptions struct {
	// WindowBytes caps the payload of one request (a server's bytes in
	// pattern-stream order). 0 selects DefaultDatatypeWindowBytes;
	// values above wire.MaxBodyLen are clipped to it.
	WindowBytes int64
	// Window is the number of requests kept in flight per server
	// connection (the tagged pipelining of DESIGN.md §2). 0 selects
	// DefaultListWindow; 1 serializes round trips.
	Window int
}

func (o DatatypeOptions) windowBytes() int64 {
	w := o.WindowBytes
	if w <= 0 {
		w = DefaultDatatypeWindowBytes
	}
	if w > wire.MaxBodyLen {
		w = wire.MaxBodyLen
	}
	return w
}

func (o DatatypeOptions) window() int {
	if o.Window <= 0 {
		return DefaultListWindow
	}
	return o.Window
}

// dtPiece is one run of a server's bytes in the pattern-data stream:
// the window planner emits these and the scatter/gather loops resolve
// them to arena extents through the StreamMap.
type dtPiece struct {
	stream int64 // position in the pattern's data stream
	n      int64
}

// dtPlan is the validated, encoded form of one datatype operation.
type dtPlan struct {
	enc     []byte  // wire encoding of the type
	dataLen int64   // pattern data bytes (count * t.Size())
	maxEnd  int64   // highest file offset written + 1 (write high-water)
	owned   []int64 // per relative server: bytes of the pattern it holds
}

// planDatatype validates the pattern against the memory list and
// computes each server's share. The sizing walk is streaming: O(tree
// depth) state, closed-form striping arithmetic per fragment — the
// flattened region list is never materialized, even client-side.
func (f *File) planDatatype(arena []byte, mem ioseg.List, t datatype.Type, base, count int64) (*dtPlan, error) {
	dataLen, _, err := datatype.CheckPattern(t, base, count)
	if err != nil {
		return nil, fmt.Errorf("pvfs: %w", err)
	}
	if err := mem.Validate(); err != nil {
		return nil, fmt.Errorf("pvfs: memory list: %w", err)
	}
	if mem.TotalLength() != dataLen {
		return nil, fmt.Errorf("pvfs: memory list covers %d bytes, pattern %d", mem.TotalLength(), dataLen)
	}
	for i, s := range mem {
		if s.End() > int64(len(arena)) {
			return nil, fmt.Errorf("pvfs: memory region %d (%v) outside buffer of %d bytes", i, s, len(arena))
		}
	}
	enc, err := datatype.Encode(t)
	if err != nil {
		return nil, fmt.Errorf("pvfs: %w", err)
	}
	cfg := f.info.Striping
	p := &dtPlan{enc: enc, dataLen: dataLen, owned: make([]int64, cfg.PCount)}
	datatype.WalkRepeated(t, base, count, 0, func(seg ioseg.Segment) bool {
		for rel := range p.owned {
			p.owned[rel] += cfg.PhysRange(rel, seg.Offset, seg.End())
		}
		if seg.End() > p.maxEnd {
			p.maxEnd = seg.End()
		}
		return true
	})
	return p, nil
}

// dtWindows iterates one server's share of the pattern-data stream in
// window-sized steps. Each call to next resumes the walk at the data
// position where the previous window's last owned byte ended (an
// O(tree depth) seek), so the full iteration visits each pattern
// fragment once; live state is one window's piece list, never the
// flattened pattern.
type dtWindows struct {
	t           datatype.Type
	base, count int64
	cfg         striping.Config
	rel         int
	winBytes    int64

	nextPos   int64 // data-stream position to resume scanning at
	remaining int64 // owned bytes not yet windowed
}

// next cuts the next window: the data position the server's evaluation
// should seek to, the owned bytes it should transfer, and the stream
// pieces those bytes occupy (for arena scatter/gather). It must not be
// called once remaining is zero.
func (w *dtWindows) next() (dataPos, want int64, pieces []dtPiece) {
	want = w.winBytes
	if want > w.remaining {
		want = w.remaining
	}
	dataPos = w.nextPos
	stream := dataPos
	var got int64
	datatype.WalkRepeated(w.t, w.base, w.count, dataPos, func(seg ioseg.Segment) bool {
		segStream := stream
		stream += seg.Length
		return w.cfg.ClipServer(seg, w.rel, func(p striping.Piece) bool {
			pos := segStream + (p.Logical.Offset - seg.Offset)
			take := p.Phys.Length
			if rem := want - got; take >= rem {
				take = rem
				w.nextPos = pos + take
			}
			pieces = append(pieces, dtPiece{stream: pos, n: take})
			got += take
			return got < want
		})
	})
	w.remaining -= got
	return dataPos, got, pieces
}

// datatypeServers builds the per-server window iterators (servers with
// no share are skipped entirely).
func (f *File) datatypeServers(p *dtPlan, t datatype.Type, base, count, winBytes int64) []*dtWindows {
	var jobs []*dtWindows
	for rel, owned := range p.owned {
		if owned == 0 {
			continue
		}
		jobs = append(jobs, &dtWindows{
			t: t, base: base, count: count,
			cfg: f.info.Striping, rel: rel,
			winBytes: winBytes, remaining: owned,
		})
	}
	return jobs
}

// ReadDatatype reads count repetitions of datatype t at base into the
// arena regions of mem (pattern-stream order: the i-th data byte of
// the pattern lands at the i-th byte of the concatenated memory
// regions). One request per server per WindowBytes of that server's
// share travels the wire — fragment count does not appear in the
// request arithmetic — and responses scatter straight from pooled
// bodies into the arena. Memory regions must not overlap one another:
// responses scatter concurrently, across servers and (when Window > 1)
// within one.
func (f *File) ReadDatatype(arena []byte, mem ioseg.List, t datatype.Type, base, count int64, opts DatatypeOptions) error {
	_, err := f.Run(context.Background(), Request{
		Arena: arena, Mem: mem, Type: t, Base: base, Count: count,
		Method: AccessDatatype, Datatype: opts,
	})
	return err
}

func (f *File) readDatatype(ctx context.Context, arena []byte, mem ioseg.List, t datatype.Type, base, count int64, opts DatatypeOptions, path *PathCounters) error {
	plan, err := f.planDatatype(arena, mem, t, base, count)
	if err != nil {
		return err
	}
	smap := memio.NewStreamMap(mem)
	winBytes := opts.windowBytes()
	jobs := f.datatypeServers(plan, t, base, count, winBytes)
	return parallel(jobs, func(w *dtWindows) error {
		n := int((w.remaining + winBytes - 1) / winBytes)
		wins := make([][]dtPiece, n)
		wants := make([]int64, n)
		return f.fs.pipelineCalls(ctx, f.info.IODAddrs[w.rel], n, opts.window(),
			func(i int) (wire.Message, error) {
				dataPos, want, pieces := w.next()
				wins[i], wants[i] = pieces, want
				req := wire.ReadDatatypeReq{
					Base: base, Count: count, DataPos: dataPos, Want: want,
					Striping: f.info.Striping, RelIndex: w.rel, TypeEnc: plan.enc,
				}
				body := req.AppendTo(wire.GetBuf(wire.DatatypeReqSize(len(plan.enc)))[:0])
				f.fs.stats.Requests.Add(1)
				path.Requests.Add(1)
				return wire.Message{
					Header: wire.Header{Type: wire.TReadDatatype, Handle: f.info.Handle},
					Body:   body,
				}, nil
			},
			func(i int, resp wire.Message) error {
				defer resp.Release()
				if int64(len(resp.Body)) != wants[i] {
					return fmt.Errorf("pvfs: datatype read returned %d bytes, want %d", len(resp.Body), wants[i])
				}
				f.fs.stats.BytesIn.Add(wants[i])
				path.Bytes.Add(wants[i])
				var rpos int64
				for _, p := range wins[i] {
					if err := smap.CopyIn(arena, p.stream, resp.Body[rpos:rpos+p.n]); err != nil {
						return err
					}
					rpos += p.n
				}
				wins[i] = nil
				return nil
			})
	})
}

// WriteDatatype writes count repetitions of datatype t at base from
// the arena regions of mem, with the same windowed, pipelined request
// discipline as ReadDatatype. Each window's payload is gathered
// directly from the arena into the pooled request body behind the
// encoded type. The pattern's file regions must not overlap one
// another when Window > 1 (windows may be applied concurrently).
func (f *File) WriteDatatype(arena []byte, mem ioseg.List, t datatype.Type, base, count int64, opts DatatypeOptions) error {
	_, err := f.Run(context.Background(), Request{
		Write: true, Arena: arena, Mem: mem, Type: t, Base: base, Count: count,
		Method: AccessDatatype, Datatype: opts,
	})
	return err
}

func (f *File) writeDatatype(ctx context.Context, arena []byte, mem ioseg.List, t datatype.Type, base, count int64, opts DatatypeOptions, path *PathCounters) error {
	plan, err := f.planDatatype(arena, mem, t, base, count)
	if err != nil {
		return err
	}
	smap := memio.NewStreamMap(mem)
	winBytes := opts.windowBytes()
	jobs := f.datatypeServers(plan, t, base, count, winBytes)
	err = parallel(jobs, func(w *dtWindows) error {
		n := int((w.remaining + winBytes - 1) / winBytes)
		return f.fs.pipelineCalls(ctx, f.info.IODAddrs[w.rel], n, opts.window(),
			func(i int) (wire.Message, error) {
				dataPos, want, pieces := w.next()
				req := wire.ReadDatatypeReq{
					Base: base, Count: count, DataPos: dataPos, Want: want,
					Striping: f.info.Striping, RelIndex: w.rel, TypeEnc: plan.enc,
				}
				body := req.AppendTo(wire.GetBuf(wire.DatatypeReqSize(len(plan.enc)) + int(want))[:0])
				for _, p := range pieces {
					var gerr error
					body, gerr = smap.AppendOut(body, arena, p.stream, p.n)
					if gerr != nil {
						wire.PutBuf(body)
						return wire.Message{}, gerr
					}
				}
				f.fs.stats.Requests.Add(1)
				f.fs.stats.BytesOut.Add(want)
				path.Requests.Add(1)
				path.Bytes.Add(want)
				return wire.Message{
					Header: wire.Header{Type: wire.TWriteDatatype, Handle: f.info.Handle},
					Body:   body,
				}, nil
			},
			func(i int, resp wire.Message) error {
				resp.Release()
				return nil
			})
	})
	if err != nil {
		return err
	}
	if plan.maxEnd > 0 {
		f.noteWritten(plan.maxEnd)
	}
	return nil
}
