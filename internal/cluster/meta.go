package cluster

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"pvfs/internal/meta"
	"pvfs/internal/pvfsnet"
	"pvfs/internal/wire"
)

// MetaOptions selects the sharded, replicated metadata plane
// (DESIGN.md §13) instead of the classic single manager: Masters
// replicated master nodes (leader-elected; kill any one without
// losing acked metadata) fronting Shards hash-partitioned metadata
// shards. The zero Options.Meta keeps the single mgr.Server wrapper.
type MetaOptions struct {
	// Masters is the master replica count (3 tolerates one failure).
	Masters int
	// Shards is the metadata shard count; create/open/stat throughput
	// scales with it. 0 means 1.
	Shards int
	// Timing overrides protocol clocks (zero fields take defaults).
	Timing meta.Timing
	// NoBatch forces group commit off: every propose takes its own WAL
	// fsync and replication round (the PVFS_NO_META_BATCH fallback).
	NoBatch bool
}

// masterProc is one running master replica.
type masterProc struct {
	node *meta.Node
	srv  *pvfsnet.Server
}

// shardProc is one running metadata shard.
type shardProc struct {
	shard *meta.Shard
	srv   *pvfsnet.Server
}

// startMeta boots the replicated metadata plane for iodAddrs.
func (c *Cluster) startMeta(iodAddrs []string) error {
	mo := *c.opts.Meta
	if mo.Masters <= 0 {
		mo.Masters = 3
	}
	if mo.Shards <= 0 {
		mo.Shards = 1
	}
	mlns := make([]net.Listener, mo.Masters)
	for i := range mlns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		mlns[i] = ln
		c.masterAddrs = append(c.masterAddrs, ln.Addr().String())
	}
	slns := make([]net.Listener, mo.Shards)
	for i := range slns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		slns[i] = ln
		c.shardAddrs = append(c.shardAddrs, ln.Addr().String())
	}
	boot := &wire.ShardMap{
		Epoch:   1,
		Masters: append([]string(nil), c.masterAddrs...),
		Shards:  append([]string(nil), c.shardAddrs...),
		IODs:    append([]string(nil), iodAddrs...),
	}
	c.metaTiming = mo.Timing
	c.metaNoBatch = mo.NoBatch
	// Every replica gets a durable state dir so kill/restart cycles
	// recover the persisted term, vote, and log (Raft's safety argument
	// requires it — an amnesiac replica can vote away acked entries).
	root := c.opts.DataDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "pvfs-meta-")
		if err != nil {
			return err
		}
		c.metaTmpDir = tmp
		root = tmp
	}
	c.masterDirs = make([]string, mo.Masters)
	for i := range c.masterDirs {
		c.masterDirs[i] = filepath.Join(root, fmt.Sprintf("master%d", i))
	}
	for i, ln := range mlns {
		node, err := meta.NewNode(meta.NodeOptions{
			ID: i, Peers: c.masterAddrs, Bootstrap: boot, Dir: c.masterDirs[i],
			Timing: mo.Timing, Logger: c.opts.Logger, NoBatch: mo.NoBatch,
		})
		if err != nil {
			ln.Close()
			return err
		}
		c.masters = append(c.masters, &masterProc{
			node: node,
			srv:  pvfsnet.NewServer(ln, node.Handle, c.opts.Logger),
		})
	}
	for i, ln := range slns {
		sh := meta.NewShard(meta.ShardOptions{
			Index: i, Masters: c.masterAddrs,
			Timing: mo.Timing, Logger: c.opts.Logger, NoBatch: mo.NoBatch,
		})
		c.shards = append(c.shards, &shardProc{
			shard: sh,
			srv:   pvfsnet.NewServer(ln, sh.Handle, c.opts.Logger),
		})
	}
	return nil
}

func (c *Cluster) closeMeta() {
	c.mu.Lock()
	shards := append([]*shardProc(nil), c.shards...)
	masters := append([]*masterProc(nil), c.masters...)
	c.mu.Unlock()
	for _, s := range shards {
		if s != nil {
			s.shard.Close()
			s.srv.Close()
		}
	}
	for _, m := range masters {
		if m != nil {
			m.node.Close()
			m.srv.Close()
		}
	}
	if c.metaTmpDir != "" {
		os.RemoveAll(c.metaTmpDir)
	}
}

// MasterAddrs returns the master replica addresses (meta mode only).
func (c *Cluster) MasterAddrs() []string {
	return append([]string(nil), c.masterAddrs...)
}

// ShardAddrs returns the metadata shard addresses (meta mode only).
func (c *Cluster) ShardAddrs() []string {
	return append([]string(nil), c.shardAddrs...)
}

// MetaLeader returns the index of the master currently leading, or -1
// when no live replica leads (mid-election).
func (c *Cluster) MetaLeader() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.masters {
		if m != nil && m.node.IsLeader() {
			return i
		}
	}
	return -1
}

// WaitMetaLeader blocks until some master leads, up to timeout.
func (c *Cluster) WaitMetaLeader(timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for {
		if i := c.MetaLeader(); i >= 0 {
			return i, nil
		}
		if time.Now().After(deadline) {
			return -1, fmt.Errorf("cluster: no metadata leader within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// KillMaster abruptly kills master replica i, as a crashed process:
// in-flight proposals see broken connections and the survivors elect a
// new leader. The address stays reserved for RestartMaster.
func (c *Cluster) KillMaster(i int) error {
	c.mu.Lock()
	m := c.masters[i]
	c.masters[i] = nil
	c.mu.Unlock()
	if m == nil {
		return nil
	}
	m.node.Close()
	return m.srv.Close()
}

// RestartMaster brings replica i back on its original address over
// its durable state dir, recovering the term, vote, log, and snapshot
// the killed incarnation had persisted — so the restarted replica
// keeps its pre-crash promises (no double vote, no granting votes
// against entries it helped commit). The leader replays or
// snapshot-installs whatever committed while it was down.
func (c *Cluster) RestartMaster(i int) error {
	c.mu.Lock()
	if c.masters[i] != nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: master %d is running", i)
	}
	addr := c.masterAddrs[i]
	c.mu.Unlock()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: restarting master %d on %s: %w", i, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	node, err := meta.NewNode(meta.NodeOptions{
		ID: i, Peers: c.masterAddrs, Dir: c.masterDirs[i],
		Timing: c.metaTiming, Logger: c.opts.Logger, NoBatch: c.metaNoBatch,
	})
	if err != nil {
		ln.Close()
		return fmt.Errorf("cluster: restarting master %d: %w", i, err)
	}
	mp := &masterProc{node: node, srv: pvfsnet.NewServer(ln, node.Handle, c.opts.Logger)}
	c.mu.Lock()
	c.masters[i] = mp
	c.mu.Unlock()
	return nil
}

// BumpEpoch commits a config change through the leader (mutate may be
// nil for a pure epoch bump) and pushes the new map to every live
// shard synchronously, so tests observe a deterministic transition;
// shards also learn new maps through their background poll.
func (c *Cluster) BumpEpoch(ctx context.Context, mutate func(*wire.ShardMap)) (*wire.ShardMap, error) {
	var lastErr error
	deadline := time.Now().Add(10 * time.Second)
	for {
		i := c.MetaLeader()
		if i < 0 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("cluster: no leader for config change: %v", lastErr)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		c.mu.Lock()
		m := c.masters[i]
		c.mu.Unlock()
		if m == nil {
			continue
		}
		nm, err := m.node.ProposeConfig(ctx, mutate)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil || time.Now().After(deadline) {
				return nil, err
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		c.mu.Lock()
		shards := append([]*shardProc(nil), c.shards...)
		c.mu.Unlock()
		for _, s := range shards {
			if s != nil {
				s.shard.InstallMap(nm)
			}
		}
		return nm, nil
	}
}

// MetaStats sums the metadata plane's request accounting across live
// shards and masters (meta mode), or the single manager's (classic).
func (c *Cluster) MetaStats() wire.ServerStats {
	var total wire.ServerStats
	c.mu.Lock()
	if c.Mgr != nil {
		c.mu.Unlock()
		return c.Mgr.Stats()
	}
	shards := append([]*shardProc(nil), c.shards...)
	masters := append([]*masterProc(nil), c.masters...)
	c.mu.Unlock()
	for _, s := range shards {
		if s != nil {
			total.Add(s.shard.Stats())
		}
	}
	for _, m := range masters {
		if m != nil {
			total.Add(m.node.Stats())
		}
	}
	return total
}
