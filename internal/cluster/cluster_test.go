package cluster_test

import (
	"path/filepath"
	"testing"

	"pvfs/internal/cluster"
	"pvfs/internal/striping"
)

func TestStartDefaultsToEightIODs(t *testing.T) {
	c, err := cluster.Start(cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.IODs) != 8 {
		t.Fatalf("iods = %d, want 8 (the paper's configuration)", len(c.IODs))
	}
	if len(c.IODAddrs()) != 8 {
		t.Fatalf("addrs = %v", c.IODAddrs())
	}
}

func TestDirBackedCluster(t *testing.T) {
	dir := t.TempDir()
	c, err := cluster.Start(cluster.Options{NumIOD: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("persist.dat", striping.Config{PCount: 2, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Enough data to reach both servers' stripe files.
	if _, err := f.WriteAt(make([]byte, 200), 0); err != nil {
		t.Fatal(err)
	}
	// Stripe files must exist on disk under iod directories.
	for _, sub := range []string{"iod0", "iod1"} {
		matches, err := filepath.Glob(filepath.Join(dir, sub, "*.stripe"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) == 0 {
			t.Fatalf("no stripe files in %s", sub)
		}
	}
}

func TestTotalStatsAggregates(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("agg.dat", striping.Config{PCount: 3, StripeSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 160), 0); err != nil {
		t.Fatal(err)
	}
	total := c.TotalStats()
	if total.BytesWritten != 160 {
		t.Fatalf("bytes written = %d, want 160", total.BytesWritten)
	}
	per := c.Stats()
	var sum int64
	for _, s := range per {
		sum += s.BytesWritten
	}
	if sum != total.BytesWritten {
		t.Fatalf("per-server sum %d != total %d", sum, total.BytesWritten)
	}
	// 160 bytes over 3 servers with 16-byte stripes: no server holds
	// everything.
	for i, s := range per {
		if s.BytesWritten == 0 || s.BytesWritten == 160 {
			t.Fatalf("server %d wrote %d bytes; striping broken", i, s.BytesWritten)
		}
	}
}

func TestRunRanksPropagatesError(t *testing.T) {
	err := cluster.RunRanks(4, func(rank int) error {
		if rank == 2 {
			return errRank2
		}
		return nil
	})
	if err != errRank2 {
		t.Fatalf("err = %v", err)
	}
}

var errRank2 = &rankError{}

type rankError struct{}

func (*rankError) Error() string { return "rank 2 failed" }

func TestBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	cluster.NewBarrier(0)
}

// TestKillRestartIOD is the daemon lifecycle contract: a killed daemon
// loses its listener abruptly, a restarted one comes back on the same
// address over its Dir-backed state, and a retrying client rides
// through the whole episode.
func TestKillRestartIOD(t *testing.T) {
	c, err := cluster.Start(cluster.Options{NumIOD: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.SetRetries(3)

	f, err := fs.Create("lifecycle.dat", striping.Config{PCount: 2, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := make([]byte, 512)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if _, err := f.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}

	addrs := c.IODAddrs()
	if err := c.KillIOD(1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := c.RestartIOD(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := c.IODAddrs(); got[1] != addrs[1] {
		t.Fatalf("restart moved the daemon: %s -> %s", addrs[1], got[1])
	}

	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x after kill/restart", i, got[i], want[i])
		}
	}
	if _, err := f.WriteAt([]byte("alive"), 0); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}
