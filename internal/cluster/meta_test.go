package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"pvfs/internal/cluster"
	"pvfs/internal/striping"
)

// TestMetaClusterEndToEnd runs the full sharded metadata plane: a
// client creates, writes, lists, and reads through replicated masters
// and two shards without knowing the topology.
func TestMetaClusterEndToEnd(t *testing.T) {
	c, err := cluster.Start(cluster.Options{
		NumIOD: 2,
		Meta:   &cluster.MetaOptions{Masters: 3, Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.WaitMetaLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.SetRetries(3)

	want := []byte("noncontiguous I/O through PVFS")
	var names []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("meta-e2e-%d", i)
		names = append(names, name)
		f, err := fs.Create(name, striping.Config{PCount: 2, StripeSize: 8})
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		if _, err := f.WriteAt(want, 0); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close %s: %v", name, err)
		}
	}

	listed, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(names) {
		t.Fatalf("list = %v, want %d names", listed, len(names))
	}
	for _, name := range names {
		f, err := fs.Open(name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		got := make([]byte, len(want))
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %s: %q", name, got)
		}
		if f.RecordedSize() != int64(len(want)) {
			t.Fatalf("%s recorded size = %d", name, f.RecordedSize())
		}
	}

	// Metadata accounting flows through the plane.
	st := c.MetaStats()
	if st.MetaCreates != int64(len(names)) {
		t.Fatalf("MetaCreates = %d, want %d", st.MetaCreates, len(names))
	}
	if st.MetaOpens == 0 {
		t.Fatal("MetaOpens = 0")
	}
	if st.ElectionCount == 0 {
		t.Fatal("ElectionCount = 0; no leader was ever elected?")
	}
}

// TestMetaClusterLeaderFailover kills the leading master mid-session;
// the client keeps working and nothing acked is lost.
func TestMetaClusterLeaderFailover(t *testing.T) {
	c, err := cluster.Start(cluster.Options{
		NumIOD: 2,
		Meta:   &cluster.MetaOptions{Masters: 3, Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.SetRetries(3)

	if _, err := fs.Create("pre-failover", striping.Config{}); err != nil {
		t.Fatal(err)
	}
	lead, err := c.WaitMetaLeader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillMaster(lead); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("post-failover", striping.Config{}); err != nil {
		t.Fatalf("create after leader kill: %v", err)
	}
	if _, err := fs.Open("pre-failover"); err != nil {
		t.Fatalf("pre-failover create lost: %v", err)
	}
	// The dead replica rejoins and can later be part of majority.
	if err := c.RestartMaster(lead); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("post-restart", striping.Config{}); err != nil {
		t.Fatal(err)
	}
}

// TestMetaClusterEpochRefresh commits a config change (epoch bump) and
// asserts a connected client rides the WrongEpoch refresh contract
// transparently: no user-visible error, all ops keep working.
func TestMetaClusterEpochRefresh(t *testing.T) {
	c, err := cluster.Start(cluster.Options{
		NumIOD: 2,
		Meta:   &cluster.MetaOptions{Masters: 1, Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// Prime the client's shard map at epoch 1.
	if _, err := fs.Create("before-bump", striping.Config{}); err != nil {
		t.Fatal(err)
	}
	nm, err := c.BumpEpoch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", nm.Epoch)
	}
	// The client still holds epoch 1; its next calls hit WrongEpoch,
	// refresh, and retry — StatusWrongEpoch must never surface.
	if _, err := fs.Create("after-bump", striping.Config{}); err != nil {
		t.Fatalf("create across epoch bump: %v", err)
	}
	if _, err := fs.Open("before-bump"); err != nil {
		t.Fatalf("open across epoch bump: %v", err)
	}
	names, err := fs.List()
	if err != nil || len(names) != 2 {
		t.Fatalf("list across epoch bump: %v %v", names, err)
	}
}
