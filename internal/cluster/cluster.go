// Package cluster provides an in-process PVFS deployment: one manager
// daemon and N I/O daemons on loopback TCP, plus an MPI-style barrier
// for coordinating client "processes".
//
// Tests, examples, and the real-mode benchmarks use this harness the
// way the paper used Chiba City: start the daemons, connect clients,
// run the workload, read back the server request accounting.
package cluster

import (
	"fmt"
	"log"
	"net"
	"path/filepath"
	"sync"
	"time"

	"pvfs/internal/client"
	"pvfs/internal/faultnet"
	"pvfs/internal/iod"
	"pvfs/internal/ioseg"
	"pvfs/internal/meta"
	"pvfs/internal/mgr"
	"pvfs/internal/store"
	"pvfs/internal/wire"
)

// Options configures a cluster.
type Options struct {
	// NumIOD is the number of I/O daemons (the paper uses 8).
	NumIOD int
	// DataDir, when non-empty, backs each daemon with a directory
	// store under DataDir/iodN; empty selects in-memory stores.
	DataDir string
	// Cache, when non-nil, wraps each daemon's store in a write-back
	// block cache (store.Cached) with these options.
	Cache *store.CacheOptions
	// FaultScript, when non-nil, wraps every I/O daemon listener so
	// accepted connections run over a scripted faulty wire
	// (faultnet.WrapListener); the manager stays healthy. Any test or
	// bench using the cluster then exercises the client's recovery
	// path without further plumbing.
	FaultScript *faultnet.Script
	// PlainStore hides the optional store interfaces (store.VectorIO,
	// store.SpanIO, store.BatchIO, store.FileStreamer) from the
	// daemons, forcing the per-fragment fallback datapath. Benchmarks
	// use it to measure the vectored path against its own baseline in
	// one binary. Store syscall accounting (store.IOStatsProvider)
	// stays visible.
	PlainStore bool
	// NoURing hides only the batched-submission interfaces
	// (store.BatchIO and store.FileStreamer) while keeping the
	// vectored ones (store.VectorIO, store.SpanIO) visible, pinning
	// the §11 fallback ladder to its vectored rung. Benchmarks use it
	// to measure ring submission and zero-copy streaming against the
	// vectored baseline in one binary.
	NoURing bool
	// Meta, when non-nil, replaces the single manager with the
	// replicated, sharded metadata plane (see MetaOptions).
	Meta *MetaOptions
	// Logger receives daemon diagnostics; nil silences them.
	Logger *log.Logger
}

// Cluster is a running in-process deployment.
type Cluster struct {
	Mgr  *mgr.Server // classic mode only; nil under Options.Meta
	IODs []*iod.Server

	opts Options
	mems []*store.Mem // per-daemon memory stores, surviving KillIOD
	mu   sync.Mutex   // guards IODs/masters/shards slots across Kill/Restart

	// Replicated metadata plane (Options.Meta); see meta.go.
	masterAddrs []string
	shardAddrs  []string
	masters     []*masterProc // nil slots are killed replicas
	shards      []*shardProc
	metaTiming  meta.Timing
	metaNoBatch bool     // group commit forced off (PVFS_NO_META_BATCH)
	masterDirs  []string // per-replica durable state dirs
	metaTmpDir  string   // owned temp root for masterDirs; removed on Close
}

// plainStore hides a store's vectored and batched interfaces
// (store.VectorIO, store.SpanIO, store.BatchIO, store.FileStreamer)
// while passing Sync and syscall accounting through, so every layer
// above it takes its per-fragment fallback path.
type plainStore struct{ store.Store }

func (p plainStore) Sync(handle uint64) error {
	if sy, ok := p.Store.(store.Syncer); ok {
		return sy.Sync(handle)
	}
	return nil
}

func (p plainStore) SyncAll() error {
	if sy, ok := p.Store.(store.Syncer); ok {
		return sy.SyncAll()
	}
	return nil
}

func (p plainStore) IOStats() store.IOStats {
	if ip, ok := p.Store.(store.IOStatsProvider); ok {
		return ip.IOStats()
	}
	return store.IOStats{}
}

// noBatchStore hides a store's batched-submission interfaces
// (store.BatchIO, store.FileStreamer) while re-exposing the vectored
// ones, Sync, and syscall accounting — the §11 fallback ladder's
// vectored rung, isolated as a benchmark baseline. The vectored
// methods fall back to per-fragment calls if the wrapped store lacks
// them, so the wrapper never advertises capability the store lacks
// performance-wise beyond plain Store semantics.
type noBatchStore struct{ store.Store }

func (p noBatchStore) ReadAtv(handle uint64, segs ioseg.List, b []byte) (int, error) {
	if v, ok := p.Store.(store.VectorIO); ok {
		return v.ReadAtv(handle, segs, b)
	}
	pos := 0
	for _, s := range segs {
		n, err := p.Store.ReadAt(handle, b[pos:pos+int(s.Length)], s.Offset)
		pos += n
		if err != nil {
			return pos, err
		}
	}
	return pos, nil
}

func (p noBatchStore) WriteAtv(handle uint64, segs ioseg.List, b []byte) (int, error) {
	if v, ok := p.Store.(store.VectorIO); ok {
		return v.WriteAtv(handle, segs, b)
	}
	pos := 0
	for _, s := range segs {
		n, err := p.Store.WriteAt(handle, b[pos:pos+int(s.Length)], s.Offset)
		pos += n
		if err != nil {
			return pos, err
		}
	}
	return pos, nil
}

func (p noBatchStore) ReadSpanv(handle uint64, off int64, bufs [][]byte) (int, error) {
	if v, ok := p.Store.(store.SpanIO); ok {
		return v.ReadSpanv(handle, off, bufs)
	}
	total := 0
	for _, b := range bufs {
		n, err := p.Store.ReadAt(handle, b, off)
		total += n
		off += int64(len(b))
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (p noBatchStore) WriteSpanv(handle uint64, off int64, bufs [][]byte) (int, error) {
	if v, ok := p.Store.(store.SpanIO); ok {
		return v.WriteSpanv(handle, off, bufs)
	}
	total := 0
	for _, b := range bufs {
		n, err := p.Store.WriteAt(handle, b, off)
		total += n
		off += int64(len(b))
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (p noBatchStore) Sync(handle uint64) error {
	if sy, ok := p.Store.(store.Syncer); ok {
		return sy.Sync(handle)
	}
	return nil
}

func (p noBatchStore) SyncAll() error {
	if sy, ok := p.Store.(store.Syncer); ok {
		return sy.SyncAll()
	}
	return nil
}

func (p noBatchStore) IOStats() store.IOStats {
	if ip, ok := p.Store.(store.IOStatsProvider); ok {
		return ip.IOStats()
	}
	return store.IOStats{}
}

// iodStore builds (or rebuilds) daemon i's store: Dir-backed under
// DataDir, else the daemon's persistent Mem store, optionally wrapped
// in a write-back cache. Durable state lives below the cache, so a
// rebuilt store sees everything a killed daemon had flushed. With
// PlainStore the vectored interfaces are masked at every layer
// boundary: below the cache (its span fill/flush falls back to
// per-block calls) and at the top (the daemon falls back to
// per-fragment submission). With NoURing only the batch/stream
// interfaces are masked, and only below the cache — the cache itself
// stays a *store.Cache (Kill's abandon depends on it) and its
// in-memory BatchIO costs no syscalls; what matters is that its
// backend fills and flushes take the vectored rung.
func (c *Cluster) iodStore(i int) (store.Store, error) {
	var st store.Store
	if c.opts.DataDir != "" {
		ds, err := store.NewDir(filepath.Join(c.opts.DataDir, fmt.Sprintf("iod%d", i)))
		if err != nil {
			return nil, err
		}
		st = ds
	} else {
		st = c.mems[i]
	}
	if c.opts.NoURing {
		st = noBatchStore{st}
	}
	if c.opts.PlainStore {
		st = plainStore{st}
	}
	if c.opts.Cache != nil {
		st = store.Cached(st, *c.opts.Cache)
		if c.opts.PlainStore {
			st = plainStore{st}
		}
	}
	return st, nil
}

// listenIOD starts daemon i's server on addr over st, applying the
// cluster's fault script to the listener.
func (c *Cluster) listenIOD(addr string, st store.Store) (*iod.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return iod.New(faultnet.WrapListener(ln, c.opts.FaultScript), st, c.opts.Logger), nil
}

// Start launches the daemons on ephemeral loopback ports.
func Start(opts Options) (*Cluster, error) {
	if opts.NumIOD <= 0 {
		opts.NumIOD = 8
	}
	c := &Cluster{opts: opts}
	if opts.DataDir == "" {
		c.mems = make([]*store.Mem, opts.NumIOD)
		for i := range c.mems {
			c.mems[i] = store.NewMem()
		}
	}
	addrs := make([]string, 0, opts.NumIOD)
	for i := 0; i < opts.NumIOD; i++ {
		st, err := c.iodStore(i)
		if err != nil {
			c.Close()
			return nil, err
		}
		srv, err := c.listenIOD("127.0.0.1:0", st)
		if err != nil {
			st.Close()
			c.Close()
			return nil, err
		}
		c.IODs = append(c.IODs, srv)
		addrs = append(addrs, srv.Addr())
	}
	if opts.Meta != nil {
		if err := c.startMeta(addrs); err != nil {
			c.Close()
			return nil, err
		}
		return c, nil
	}
	m, err := mgr.Listen("127.0.0.1:0", addrs, opts.Logger)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Mgr = m
	return c, nil
}

// KillIOD abruptly kills I/O daemon i, as a crashed process: in-flight
// calls see broken connections, a write-back cache loses its unflushed
// blocks (the documented loss window, DESIGN.md §7), durable state
// survives. The daemon's address stays reserved for RestartIOD.
func (c *Cluster) KillIOD(i int) error {
	c.mu.Lock()
	srv := c.IODs[i]
	c.mu.Unlock()
	return srv.Kill()
}

// RestartIOD brings daemon i back on its original address over its
// surviving state — the restart an init system performs. Mem-backed
// daemons keep their store instance (its Close is a no-op);
// Dir-backed daemons re-open their directory and recover everything
// that was flushed before the kill. The listen is retried briefly in
// case the kernel has not yet released the address.
func (c *Cluster) RestartIOD(i int) error {
	c.mu.Lock()
	addr := c.IODs[i].Addr()
	c.mu.Unlock()
	st, err := c.iodStore(i)
	if err != nil {
		return err
	}
	var srv *iod.Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv, err = c.listenIOD(addr, st)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			st.Close()
			return fmt.Errorf("cluster: restarting iod %d on %s: %w", i, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.mu.Lock()
	c.IODs[i] = srv
	c.mu.Unlock()
	return nil
}

// MgrAddr returns the metadata entry point clients connect to: the
// single manager's address, or the first master replica's under
// Options.Meta (the client learns the shard map from any replica).
func (c *Cluster) MgrAddr() string {
	if c.Mgr != nil {
		return c.Mgr.Addr()
	}
	return c.masterAddrs[0]
}

// IODAddrs returns the I/O daemon addresses in stripe order.
func (c *Cluster) IODAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.IODs))
	for i, s := range c.IODs {
		out[i] = s.Addr()
	}
	return out
}

// Connect opens a client session against the cluster. Each simulated
// compute process should use its own session, as each PVFS client
// process owns its connections.
func (c *Cluster) Connect() (*client.FS, error) {
	return client.Connect(c.MgrAddr())
}

// Stats snapshots each I/O daemon's request accounting. Accounting
// does not survive KillIOD (the restarted daemon counts from zero, as
// a real restart would).
func (c *Cluster) Stats() []wire.ServerStats {
	c.mu.Lock()
	iods := append([]*iod.Server(nil), c.IODs...)
	c.mu.Unlock()
	out := make([]wire.ServerStats, len(iods))
	for i, s := range iods {
		out[i] = s.Stats()
	}
	return out
}

// TotalStats sums the daemon accounting.
func (c *Cluster) TotalStats() wire.ServerStats {
	var total wire.ServerStats
	for _, s := range c.Stats() {
		total.Add(s)
	}
	return total
}

// Close stops every daemon.
func (c *Cluster) Close() error {
	var first error
	if c.Mgr != nil {
		first = c.Mgr.Close()
	}
	c.closeMeta()
	c.mu.Lock()
	iods := append([]*iod.Server(nil), c.IODs...)
	c.mu.Unlock()
	for _, s := range iods {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Barrier is a reusable N-party synchronization barrier, the
// equivalent of MPI_Barrier the paper uses to serialize data sieving
// writes (§4.2.1, §4.3.1).
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	round uint64
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("cluster: barrier size must be positive")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n parties have called Wait, then releases them
// all. The barrier is reusable across rounds.
func (b *Barrier) Wait() {
	b.mu.Lock()
	round := b.round
	b.count++
	if b.count == b.n {
		b.count = 0
		b.round++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for round == b.round {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// RunRanks runs fn(rank) on nranks goroutines (one per simulated
// compute process) and returns the first error.
func RunRanks(nranks int, fn func(rank int) error) error {
	errs := make(chan error, nranks)
	for r := 0; r < nranks; r++ {
		go func(rank int) { errs <- fn(rank) }(r)
	}
	var first error
	for i := 0; i < nranks; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
