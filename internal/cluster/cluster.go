// Package cluster provides an in-process PVFS deployment: one manager
// daemon and N I/O daemons on loopback TCP, plus an MPI-style barrier
// for coordinating client "processes".
//
// Tests, examples, and the real-mode benchmarks use this harness the
// way the paper used Chiba City: start the daemons, connect clients,
// run the workload, read back the server request accounting.
package cluster

import (
	"fmt"
	"log"
	"path/filepath"
	"sync"

	"pvfs/internal/client"
	"pvfs/internal/iod"
	"pvfs/internal/mgr"
	"pvfs/internal/store"
	"pvfs/internal/wire"
)

// Options configures a cluster.
type Options struct {
	// NumIOD is the number of I/O daemons (the paper uses 8).
	NumIOD int
	// DataDir, when non-empty, backs each daemon with a directory
	// store under DataDir/iodN; empty selects in-memory stores.
	DataDir string
	// Cache, when non-nil, wraps each daemon's store in a write-back
	// block cache (store.Cached) with these options.
	Cache *store.CacheOptions
	// Logger receives daemon diagnostics; nil silences them.
	Logger *log.Logger
}

// Cluster is a running in-process deployment.
type Cluster struct {
	Mgr  *mgr.Server
	IODs []*iod.Server
}

// Start launches the daemons on ephemeral loopback ports.
func Start(opts Options) (*Cluster, error) {
	if opts.NumIOD <= 0 {
		opts.NumIOD = 8
	}
	c := &Cluster{}
	addrs := make([]string, 0, opts.NumIOD)
	for i := 0; i < opts.NumIOD; i++ {
		var st store.Store
		if opts.DataDir != "" {
			ds, err := store.NewDir(filepath.Join(opts.DataDir, fmt.Sprintf("iod%d", i)))
			if err != nil {
				c.Close()
				return nil, err
			}
			st = ds
		} else {
			st = store.NewMem()
		}
		if opts.Cache != nil {
			st = store.Cached(st, *opts.Cache)
		}
		srv, err := iod.Listen("127.0.0.1:0", st, opts.Logger)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.IODs = append(c.IODs, srv)
		addrs = append(addrs, srv.Addr())
	}
	m, err := mgr.Listen("127.0.0.1:0", addrs, opts.Logger)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Mgr = m
	return c, nil
}

// MgrAddr returns the manager's address.
func (c *Cluster) MgrAddr() string { return c.Mgr.Addr() }

// IODAddrs returns the I/O daemon addresses in stripe order.
func (c *Cluster) IODAddrs() []string {
	out := make([]string, len(c.IODs))
	for i, s := range c.IODs {
		out[i] = s.Addr()
	}
	return out
}

// Connect opens a client session against the cluster. Each simulated
// compute process should use its own session, as each PVFS client
// process owns its connections.
func (c *Cluster) Connect() (*client.FS, error) {
	return client.Connect(c.MgrAddr())
}

// Stats snapshots each I/O daemon's request accounting.
func (c *Cluster) Stats() []wire.ServerStats {
	out := make([]wire.ServerStats, len(c.IODs))
	for i, s := range c.IODs {
		out[i] = s.Stats()
	}
	return out
}

// TotalStats sums the daemon accounting.
func (c *Cluster) TotalStats() wire.ServerStats {
	var total wire.ServerStats
	for _, s := range c.Stats() {
		total.Add(s)
	}
	return total
}

// Close stops every daemon.
func (c *Cluster) Close() error {
	var first error
	if c.Mgr != nil {
		first = c.Mgr.Close()
	}
	for _, s := range c.IODs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Barrier is a reusable N-party synchronization barrier, the
// equivalent of MPI_Barrier the paper uses to serialize data sieving
// writes (§4.2.1, §4.3.1).
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	round uint64
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("cluster: barrier size must be positive")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n parties have called Wait, then releases them
// all. The barrier is reusable across rounds.
func (b *Barrier) Wait() {
	b.mu.Lock()
	round := b.round
	b.count++
	if b.count == b.n {
		b.count = 0
		b.round++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for round == b.round {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// RunRanks runs fn(rank) on nranks goroutines (one per simulated
// compute process) and returns the first error.
func RunRanks(nranks int, fn func(rank int) error) error {
	errs := make(chan error, nranks)
	for r := 0; r < nranks; r++ {
		go func(rank int) { errs <- fn(rank) }(r)
	}
	var first error
	for i := 0; i < nranks; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
